#include "topology/path.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

namespace griphon::topology {

Distance Path::length(const Graph& g) const {
  Distance d{};
  for (const LinkId l : links) d += g.link(l).length();
  return d;
}

bool Path::uses_link(LinkId id) const noexcept {
  return std::find(links.begin(), links.end(), id) != links.end();
}

bool Path::uses_node(NodeId id) const noexcept {
  return std::find(nodes.begin(), nodes.end(), id) != nodes.end();
}

WeightFn distance_weight() {
  return [](const Link& l) { return l.length().in_km(); };
}

WeightFn hop_weight() {
  return [](const Link&) { return 1.0; };
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra with explicit ban sets (used directly and by Yen's spur loop).
std::optional<Path> dijkstra(const Graph& g, NodeId src, NodeId dst,
                             const WeightFn& weight, const LinkFilter& filter,
                             const std::set<LinkId>& banned_links,
                             const std::set<NodeId>& banned_nodes) {
  if (src == dst)
    throw std::invalid_argument("shortest_path: src == dst");
  const std::size_t n = g.nodes().size();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n);   // link used to reach node
  std::vector<NodeId> prev(n);  // predecessor node

  using QItem = std::pair<double, NodeId>;
  auto cmp = [](const QItem& a, const QItem& b) { return a.first > b.first; };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> pq(cmp);

  dist[src.value()] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u.value()]) continue;  // stale entry
    if (u == dst) break;
    for (const LinkId lid : g.links_at(u)) {
      if (banned_links.contains(lid)) continue;
      const Link& l = g.link(lid);
      if (filter && !filter(l)) continue;
      const NodeId v = l.peer(u);
      if (banned_nodes.contains(v)) continue;
      const double w = weight(l);
      assert(w > 0 && "link weights must be positive");
      if (dist[u.value()] + w < dist[v.value()]) {
        dist[v.value()] = dist[u.value()] + w;
        via[v.value()] = lid;
        prev[v.value()] = u;
        pq.emplace(dist[v.value()], v);
      }
    }
  }
  if (dist[dst.value()] == kInf) return std::nullopt;

  Path p;
  for (NodeId at = dst; at != src; at = prev[at.value()]) {
    p.nodes.push_back(at);
    p.links.push_back(via[at.value()]);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

double path_weight(const Graph& g, const Path& p, const WeightFn& weight) {
  double w = 0;
  for (const LinkId l : p.links) w += weight(g.link(l));
  return w;
}

}  // namespace

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const WeightFn& weight,
                                  const LinkFilter& filter) {
  return dijkstra(g, src, dst, weight, filter, {}, {});
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                   std::size_t k, const WeightFn& weight,
                                   const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(g, src, dst, weight, filter);
  if (!first) return result;
  result.push_back(*std::move(first));

  // Candidate pool ordered by weight; ties broken deterministically by the
  // link sequence so runs are reproducible.
  auto cand_cmp = [&](const Path& a, const Path& b) {
    const double wa = path_weight(g, a, weight);
    const double wb = path_weight(g, b, weight);
    if (wa != wb) return wa < wb;
    return a.links < b.links;
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t i = 0; i + 1 < last.nodes.size(); ++i) {
      const NodeId spur_node = last.nodes[i];
      // Root: prefix of `last` up to the spur node.
      Path root;
      root.nodes.assign(last.nodes.begin(), last.nodes.begin() + i + 1);
      root.links.assign(last.links.begin(), last.links.begin() + i);

      std::set<LinkId> banned_links;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       p.nodes.begin())) {
          banned_links.insert(p.links[i]);
        }
      }
      std::set<NodeId> banned_nodes(root.nodes.begin(),
                                    std::prev(root.nodes.end()));

      auto spur = dijkstra(g, spur_node, dst, weight, filter, banned_links,
                           banned_nodes);
      if (!spur) continue;

      Path total = root;
      total.nodes.insert(total.nodes.end(), spur->nodes.begin() + 1,
                         spur->nodes.end());
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end()) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    const auto best =
        std::min_element(candidates.begin(), candidates.end(), cand_cmp);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

namespace {

/// Directed arc in Bhandari's residual graph.
struct Arc {
  NodeId from;
  NodeId to;
  LinkId link;
  double weight;
};

/// Bellman-Ford over an explicit arc list (negative arcs allowed; the
/// residual graph Bhandari builds has no negative cycles).
std::optional<std::vector<Arc>> bellman_ford(std::size_t num_nodes,
                                             const std::vector<Arc>& arcs,
                                             NodeId src, NodeId dst) {
  std::vector<double> dist(num_nodes, kInf);
  std::vector<int> via(num_nodes, -1);  // index into arcs
  dist[src.value()] = 0;
  for (std::size_t round = 0; round + 1 < num_nodes; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const Arc& a = arcs[i];
      if (dist[a.from.value()] == kInf) continue;
      if (dist[a.from.value()] + a.weight <
          dist[a.to.value()] - 1e-12) {
        dist[a.to.value()] = dist[a.from.value()] + a.weight;
        via[a.to.value()] = static_cast<int>(i);
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[dst.value()] == kInf) return std::nullopt;
  std::vector<Arc> walk;
  for (NodeId at = dst; at != src;) {
    const Arc& a = arcs[static_cast<std::size_t>(via[at.value()])];
    walk.push_back(a);
    at = a.from;
  }
  std::reverse(walk.begin(), walk.end());
  return walk;
}

}  // namespace

std::optional<DisjointPair> disjoint_pair(const Graph& g, NodeId src,
                                          NodeId dst, const WeightFn& weight,
                                          const LinkFilter& filter) {
  auto p1 = shortest_path(g, src, dst, weight, filter);
  if (!p1) return std::nullopt;

  // Directed traversal of p1: link -> direction (from-node).
  std::map<LinkId, NodeId> p1_dir;  // link -> node the path leaves it from
  for (std::size_t i = 0; i < p1->links.size(); ++i)
    p1_dir[p1->links[i]] = p1->nodes[i];

  // Residual arcs: every usable undirected link contributes both arcs,
  // except p1 links: forward arc removed, reverse arc negated.
  std::vector<Arc> arcs;
  for (const Link& l : g.links()) {
    if (filter && !filter(l)) continue;
    const double w = weight(l);
    const auto it = p1_dir.find(l.id);
    if (it == p1_dir.end()) {
      arcs.push_back(Arc{l.a, l.b, l.id, w});
      arcs.push_back(Arc{l.b, l.a, l.id, w});
    } else {
      const NodeId from = it->second;
      arcs.push_back(Arc{l.peer(from), from, l.id, -w});
    }
  }

  const auto p2walk = bellman_ford(g.nodes().size(), arcs, src, dst);
  if (!p2walk) return std::nullopt;

  // Interlace removal: links traversed by p2 in reverse of p1 cancel out.
  std::set<LinkId> cancelled;
  for (const Arc& a : *p2walk)
    if (a.weight < 0) cancelled.insert(a.link);

  // Union of remaining directed edges from p1 and p2.
  struct Edge {
    NodeId from;
    NodeId to;
    LinkId link;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < p1->links.size(); ++i) {
    if (cancelled.contains(p1->links[i])) continue;
    edges.push_back(Edge{p1->nodes[i], p1->nodes[i + 1], p1->links[i]});
  }
  for (const Arc& a : *p2walk) {
    if (cancelled.contains(a.link)) continue;
    edges.push_back(Edge{a.from, a.to, a.link});
  }

  // Recombine into two arc-disjoint src->dst paths by walking the edge set.
  auto extract = [&]() -> Path {
    Path p;
    p.nodes.push_back(src);
    NodeId at = src;
    while (at != dst) {
      const auto it = std::find_if(edges.begin(), edges.end(),
                                   [&](const Edge& e) { return e.from == at; });
      assert(it != edges.end() && "disjoint_pair: broken edge set");
      p.links.push_back(it->link);
      at = it->to;
      p.nodes.push_back(at);
      edges.erase(it);
    }
    return p;
  };

  DisjointPair pair;
  pair.primary = extract();
  pair.secondary = extract();
  // Deterministic ordering: primary is the shorter of the two.
  if (path_weight(g, pair.secondary, weight) <
      path_weight(g, pair.primary, weight))
    std::swap(pair.primary, pair.secondary);
  return pair;
}

}  // namespace griphon::topology
