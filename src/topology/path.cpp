#include "topology/path.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace griphon::topology {

Distance Path::length(const Graph& g) const {
  Distance d{};
  for (const LinkId l : links) d += g.link(l).length();
  return d;
}

bool Path::uses_link(LinkId id) const noexcept {
  return std::find(links.begin(), links.end(), id) != links.end();
}

bool Path::uses_node(NodeId id) const noexcept {
  return std::find(nodes.begin(), nodes.end(), id) != nodes.end();
}

WeightFn distance_weight() {
  return [](const Link& l) { return l.length().in_km(); };
}

WeightFn hop_weight() {
  return [](const Link&) { return 1.0; };
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Lazy per-link caches for the weight and filter callbacks. Both are
/// std::functions invoked per edge relaxation on the Dijkstra hot path —
/// and distance_weight() re-sums the link's span vector on every call —
/// so one k-shortest-paths invocation (many spur Dijkstras over the same
/// graph) evaluates each callback at most once per link. Cached values are
/// exactly what the callback returned, so results are bit-identical; like
/// the uncached code, a link the search never touches is never evaluated.
class LinkCallbackCache {
 public:
  LinkCallbackCache(const Graph& g, const WeightFn& weight,
                    const LinkFilter& filter)
      : weight_(weight), filter_(filter),
        w_(g.links().size(), std::numeric_limits<double>::quiet_NaN()),
        allowed_(g.links().size(), kUnknown) {}

  [[nodiscard]] double weight_of(const Link& l) {
    double& v = w_[l.id.value()];
    if (std::isnan(v)) v = weight_(l);
    return v;
  }

  [[nodiscard]] bool allowed(const Link& l) {
    char& state = allowed_[l.id.value()];
    if (state == kUnknown)
      state = (!filter_ || filter_(l)) ? kAllowed : kBanned;
    return state == kAllowed;
  }

 private:
  static constexpr char kUnknown = 0, kAllowed = 1, kBanned = 2;

  const WeightFn& weight_;
  const LinkFilter& filter_;
  std::vector<double> w_;
  std::vector<char> allowed_;
};

/// Scratch buffers for dijkstra(), reusable across calls so Yen's spur
/// loop (a dozen-plus searches per invocation on a backbone graph) does
/// not re-allocate its distance/heap arrays every time.
struct DijkstraWorkspace {
  std::vector<double> dist;
  std::vector<LinkId> via;   // link used to reach node
  std::vector<NodeId> prev;  // predecessor node
  std::vector<std::pair<double, NodeId>> heap;
};

/// Dijkstra with explicit ban sets, passed as flat bitmaps indexed by id
/// value (empty vector = nothing banned). Used directly and by Yen's spur
/// loop, where the O(1) bitmap test replaces a std::set lookup per edge.
std::optional<Path> dijkstra(const Graph& g, NodeId src, NodeId dst,
                             LinkCallbackCache& cache,
                             const std::vector<char>& banned_links,
                             const std::vector<char>& banned_nodes,
                             DijkstraWorkspace& ws) {
  if (src == dst)
    throw std::invalid_argument("shortest_path: src == dst");
  const auto banned = [](const std::vector<char>& set, std::uint64_t i) {
    return i < set.size() && set[i] != 0;
  };
  const std::size_t n = g.nodes().size();
  ws.dist.assign(n, kInf);
  ws.via.resize(n);
  ws.prev.resize(n);
  auto& dist = ws.dist;
  auto& via = ws.via;
  auto& prev = ws.prev;

  using QItem = std::pair<double, NodeId>;
  auto cmp = [](const QItem& a, const QItem& b) { return a.first > b.first; };
  ws.heap.clear();
  auto& heap = ws.heap;

  dist[src.value()] = 0;
  heap.emplace_back(0.0, src);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > dist[u.value()]) continue;  // stale entry
    if (u == dst) break;
    for (const LinkId lid : g.links_at(u)) {
      if (banned(banned_links, lid.value())) continue;
      const Link& l = g.link(lid);
      if (!cache.allowed(l)) continue;
      const NodeId v = l.peer(u);
      if (banned(banned_nodes, v.value())) continue;
      const double w = cache.weight_of(l);
      assert(w > 0 && "link weights must be positive");
      if (dist[u.value()] + w < dist[v.value()]) {
        dist[v.value()] = dist[u.value()] + w;
        via[v.value()] = lid;
        prev[v.value()] = u;
        heap.emplace_back(dist[v.value()], v);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  if (dist[dst.value()] == kInf) return std::nullopt;

  Path p;
  for (NodeId at = dst; at != src; at = prev[at.value()]) {
    p.nodes.push_back(at);
    p.links.push_back(via[at.value()]);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

double path_weight(const Graph& g, const Path& p, const WeightFn& weight) {
  double w = 0;
  for (const LinkId l : p.links) w += weight(g.link(l));
  return w;
}

/// path_weight against the cache: same per-link values, same summation
/// order, therefore the same double as the uncached version.
double cached_path_weight(const Graph& g, const Path& p,
                          LinkCallbackCache& cache) {
  double w = 0;
  for (const LinkId l : p.links) w += cache.weight_of(g.link(l));
  return w;
}

}  // namespace

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const WeightFn& weight,
                                  const LinkFilter& filter) {
  LinkCallbackCache cache(g, weight, filter);
  DijkstraWorkspace ws;
  return dijkstra(g, src, dst, cache, {}, {}, ws);
}

namespace {

/// FNV-style hash of a link sequence; a valid path's links determine its
/// nodes, so the links alone identify the path. Collisions are resolved by
/// the unordered_set's vector equality, never by dropping a path.
struct LinkSeqHash {
  std::size_t operator()(const std::vector<LinkId>& links) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (const LinkId l : links) {
      h ^= static_cast<std::size_t>(l.value());
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Candidate pool entry: path weight computed once at insertion — summed in
/// path order, so bit-identical to recomputing it on every comparison —
/// with ties broken deterministically on the link sequence. `spur_index`
/// records where the path deviated from its parent, for Lawler's rule.
struct Candidate {
  double weight;
  Path path;
  std::size_t spur_index;

  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.path.links < b.path.links;
  }
};

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                   std::size_t k, const WeightFn& weight,
                                   const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  // One callback cache and one scratch workspace for the whole run: the
  // initial search, every spur Dijkstra, and every candidate weight sum
  // reuse the same per-link values and buffers.
  LinkCallbackCache cache(g, weight, filter);
  DijkstraWorkspace ws;
  auto first = dijkstra(g, src, dst, cache, {}, {}, ws);
  if (!first) return result;
  result.push_back(*std::move(first));
  // Deviation index of each accepted path from its parent (Lawler): spur
  // candidates at earlier indices were already generated when the prefix-
  // sharing ancestor was processed, so the spur loop can start there.
  std::vector<std::size_t> deviation{0};

  // Candidate pool kept sorted by (weight, link sequence) so runs are
  // reproducible and the next-best path pops in O(log n).
  std::set<Candidate> candidates;
  // Every path ever produced (accepted or still pending), for O(1) dedup
  // instead of linear scans of both pools.
  std::unordered_set<std::vector<LinkId>, LinkSeqHash> seen;
  seen.insert(result.front().links);

  std::vector<char> banned_links(g.links().size(), 0);
  std::vector<char> banned_nodes(g.nodes().size(), 0);
  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t i = deviation.back(); i + 1 < last.nodes.size(); ++i) {
      const NodeId spur_node = last.nodes[i];
      // Root: prefix of `last` up to the spur node.
      Path root;
      root.nodes.assign(last.nodes.begin(), last.nodes.begin() + i + 1);
      root.links.assign(last.links.begin(), last.links.begin() + i);

      std::fill(banned_links.begin(), banned_links.end(), 0);
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       p.nodes.begin())) {
          banned_links[p.links[i].value()] = 1;
        }
      }
      std::fill(banned_nodes.begin(), banned_nodes.end(), 0);
      for (auto it = root.nodes.begin(); it != std::prev(root.nodes.end());
           ++it)
        banned_nodes[it->value()] = 1;

      auto spur = dijkstra(g, spur_node, dst, cache, banned_links,
                           banned_nodes, ws);
      if (!spur) continue;

      Path total = root;
      total.nodes.insert(total.nodes.end(), spur->nodes.begin() + 1,
                         spur->nodes.end());
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (seen.insert(total.links).second) {
        const double w = cached_path_weight(g, total, cache);
        candidates.insert(Candidate{w, std::move(total), i});
      }
    }
    if (candidates.empty()) break;
    auto best = candidates.extract(candidates.begin());
    result.push_back(std::move(best.value().path));
    deviation.push_back(best.value().spur_index);
  }
  return result;
}

namespace {

/// Directed arc in Bhandari's residual graph.
struct Arc {
  NodeId from;
  NodeId to;
  LinkId link;
  double weight;
};

/// Bellman-Ford over an explicit arc list (negative arcs allowed; the
/// residual graph Bhandari builds has no negative cycles).
std::optional<std::vector<Arc>> bellman_ford(std::size_t num_nodes,
                                             const std::vector<Arc>& arcs,
                                             NodeId src, NodeId dst) {
  std::vector<double> dist(num_nodes, kInf);
  std::vector<int> via(num_nodes, -1);  // index into arcs
  dist[src.value()] = 0;
  for (std::size_t round = 0; round + 1 < num_nodes; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const Arc& a = arcs[i];
      if (dist[a.from.value()] == kInf) continue;
      if (dist[a.from.value()] + a.weight <
          dist[a.to.value()] - 1e-12) {
        dist[a.to.value()] = dist[a.from.value()] + a.weight;
        via[a.to.value()] = static_cast<int>(i);
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[dst.value()] == kInf) return std::nullopt;
  std::vector<Arc> walk;
  for (NodeId at = dst; at != src;) {
    const Arc& a = arcs[static_cast<std::size_t>(via[at.value()])];
    walk.push_back(a);
    at = a.from;
  }
  std::reverse(walk.begin(), walk.end());
  return walk;
}

}  // namespace

std::optional<DisjointPair> disjoint_pair(const Graph& g, NodeId src,
                                          NodeId dst, const WeightFn& weight,
                                          const LinkFilter& filter) {
  auto p1 = shortest_path(g, src, dst, weight, filter);
  if (!p1) return std::nullopt;

  // Directed traversal of p1: link -> direction (from-node).
  std::map<LinkId, NodeId> p1_dir;  // link -> node the path leaves it from
  for (std::size_t i = 0; i < p1->links.size(); ++i)
    p1_dir[p1->links[i]] = p1->nodes[i];

  // Residual arcs: every usable undirected link contributes both arcs,
  // except p1 links: forward arc removed, reverse arc negated.
  std::vector<Arc> arcs;
  for (const Link& l : g.links()) {
    if (filter && !filter(l)) continue;
    const double w = weight(l);
    const auto it = p1_dir.find(l.id);
    if (it == p1_dir.end()) {
      arcs.push_back(Arc{l.a, l.b, l.id, w});
      arcs.push_back(Arc{l.b, l.a, l.id, w});
    } else {
      const NodeId from = it->second;
      arcs.push_back(Arc{l.peer(from), from, l.id, -w});
    }
  }

  const auto p2walk = bellman_ford(g.nodes().size(), arcs, src, dst);
  if (!p2walk) return std::nullopt;

  // Interlace removal: links traversed by p2 in reverse of p1 cancel out.
  std::set<LinkId> cancelled;
  for (const Arc& a : *p2walk)
    if (a.weight < 0) cancelled.insert(a.link);

  // Union of remaining directed edges from p1 and p2.
  struct Edge {
    NodeId from;
    NodeId to;
    LinkId link;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < p1->links.size(); ++i) {
    if (cancelled.contains(p1->links[i])) continue;
    edges.push_back(Edge{p1->nodes[i], p1->nodes[i + 1], p1->links[i]});
  }
  for (const Arc& a : *p2walk) {
    if (cancelled.contains(a.link)) continue;
    edges.push_back(Edge{a.from, a.to, a.link});
  }

  // Recombine into two arc-disjoint src->dst paths by walking the edge set.
  auto extract = [&]() -> Path {
    Path p;
    p.nodes.push_back(src);
    NodeId at = src;
    while (at != dst) {
      const auto it = std::find_if(edges.begin(), edges.end(),
                                   [&](const Edge& e) { return e.from == at; });
      assert(it != edges.end() && "disjoint_pair: broken edge set");
      p.links.push_back(it->link);
      at = it->to;
      p.nodes.push_back(at);
      edges.erase(it);
    }
    return p;
  };

  DisjointPair pair;
  pair.primary = extract();
  pair.secondary = extract();
  // Deterministic ordering: primary is the shorter of the two.
  if (path_weight(g, pair.secondary, weight) <
      path_weight(g, pair.primary, weight))
    std::swap(pair.primary, pair.secondary);
  return pair;
}

}  // namespace griphon::topology
