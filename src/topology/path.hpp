// Path computation over the physical graph.
//
// Provides:
//  * Dijkstra shortest path with pluggable link weights and filters
//    (wavelength-availability filtering happens at the RWA layer by
//    passing a filter here),
//  * Yen's k-shortest loopless paths (route diversity for RWA fallback),
//  * Bhandari's algorithm for a shortest pair of link-disjoint paths
//    (bridge-and-roll requires the bridge to be resource-disjoint).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "topology/graph.hpp"

namespace griphon::topology {

/// An acyclic node/link walk through the graph. `nodes` has one more
/// element than `links`; nodes.front()/back() are the endpoints.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] bool empty() const noexcept { return links.empty(); }
  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
  [[nodiscard]] Distance length(const Graph& g) const;
  [[nodiscard]] bool uses_link(LinkId id) const noexcept;
  [[nodiscard]] bool uses_node(NodeId id) const noexcept;

  friend bool operator==(const Path& a, const Path& b) noexcept {
    return a.links == b.links && a.nodes == b.nodes;
  }
};

/// Per-link weight; must be > 0 for links the path may use.
using WeightFn = std::function<double(const Link&)>;
/// Returns false for links the path must avoid (failed, full, maintenance).
using LinkFilter = std::function<bool(const Link&)>;

/// Distance-in-km weight (the default objective: shortest fiber route).
[[nodiscard]] WeightFn distance_weight();
/// Unit weight (min-hop routing, what the testbed GUI exposes).
[[nodiscard]] WeightFn hop_weight();

/// Shortest path from src to dst under `weight`, ignoring links rejected by
/// `filter`. Empty optional when dst is unreachable.
[[nodiscard]] std::optional<Path> shortest_path(
    const Graph& g, NodeId src, NodeId dst, const WeightFn& weight,
    const LinkFilter& filter = nullptr);

/// Yen's algorithm: up to k loopless shortest paths in nondecreasing weight
/// order. k >= 1; result may hold fewer than k paths.
[[nodiscard]] std::vector<Path> k_shortest_paths(
    const Graph& g, NodeId src, NodeId dst, std::size_t k,
    const WeightFn& weight, const LinkFilter& filter = nullptr);

/// Bhandari's algorithm: a pair of link-disjoint paths minimizing total
/// weight, or nullopt when no such pair exists. The first path of the pair
/// is not necessarily the overall shortest path.
struct DisjointPair {
  Path primary;
  Path secondary;
};
[[nodiscard]] std::optional<DisjointPair> disjoint_pair(
    const Graph& g, NodeId src, NodeId dst, const WeightFn& weight,
    const LinkFilter& filter = nullptr);

}  // namespace griphon::topology
