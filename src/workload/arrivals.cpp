#include "workload/arrivals.hpp"

namespace griphon::workload {

void PoissonConnectionLoad::run_until(SimTime until) {
  schedule_next(until);
}

void PoissonConnectionLoad::schedule_next(SimTime until) {
  const double mean_gap_hours = 1.0 / params_.arrivals_per_hour;
  const SimTime gap =
      from_seconds(engine_->rng().exponential(mean_gap_hours * 3600.0));
  if (engine_->now() + gap > until) return;
  engine_->schedule(gap, [this, until]() { arrival(until); });
}

void PoissonConnectionLoad::arrival(SimTime until) {
  ++stats_.offered;
  const auto& pair = params_.pairs[static_cast<std::size_t>(
      engine_->rng().uniform_int(0,
                                 static_cast<int>(params_.pairs.size()) - 1))];
  const SimTime holding =
      from_seconds(engine_->rng().exponential(to_seconds(params_.mean_holding)));
  portal_->connect(
      pair.first, pair.second, params_.rate, params_.protection,
      [this, holding](Result<ConnectionId> r) {
        if (!r.ok()) {
          const auto code = r.error().code();
          if (code == ErrorCode::kResourceExhausted ||
              code == ErrorCode::kUnreachable)
            ++stats_.blocked;
          else
            ++stats_.errored;
          return;
        }
        ++stats_.accepted;
        const ConnectionId id = r.value();
        engine_->schedule(holding, [this, id]() {
          portal_->disconnect(id, [](Status) {});
        });
      });
  schedule_next(until);
}

}  // namespace griphon::workload
