// Stochastic connection demand.
//
// PoissonConnectionLoad offers the classic telephony-style load the paper's
// §4 "network resource planning" challenge reasons about: connection
// requests arrive as a Poisson process, hold for an exponential time, and
// are blocked when the network cannot serve them. The carrier engineers the
// OT pool / spectrum against a target blocking probability — but, as the
// paper notes, with far fewer users and far more expensive lines than POTS.
#pragma once

#include <functional>
#include <vector>

#include "core/portal.hpp"

namespace griphon::workload {

class PoissonConnectionLoad {
 public:
  struct Params {
    double arrivals_per_hour = 4.0;
    SimTime mean_holding = hours(2);
    DataRate rate = rates::k10G;
    core::ProtectionMode protection = core::ProtectionMode::kRestorable;
    /// Site pairs demand is drawn from (uniformly).
    std::vector<std::pair<MuxponderId, MuxponderId>> pairs;
  };

  struct Stats {
    std::size_t offered = 0;
    std::size_t accepted = 0;
    std::size_t blocked = 0;   ///< kResourceExhausted / kUnreachable
    std::size_t errored = 0;   ///< anything else
    [[nodiscard]] double blocking_probability() const {
      return offered == 0 ? 0.0
                          : static_cast<double>(blocked) /
                                static_cast<double>(offered);
    }
  };

  PoissonConnectionLoad(sim::Engine* engine, core::CustomerPortal* portal,
                        Params params)
      : engine_(engine), portal_(portal), params_(std::move(params)) {}

  /// Start generating arrivals until `until` (simulated time).
  void run_until(SimTime until);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void schedule_next(SimTime until);
  void arrival(SimTime until);

  sim::Engine* engine_;
  core::CustomerPortal* portal_;
  Params params_;
  Stats stats_;
};

}  // namespace griphon::workload
