#include "workload/bod_demand.hpp"

#include <cmath>

namespace griphon::workload {

void BulkDemandGenerator::run_until(SimTime until) {
  schedule_next(until);
}

void BulkDemandGenerator::schedule_next(SimTime until) {
  const double mean_gap_hours = 1.0 / params_.arrivals_per_hour;
  const SimTime gap =
      from_seconds(engine_->rng().exponential(mean_gap_hours * 3600.0));
  if (engine_->now() + gap > until) return;
  engine_->schedule(gap, [this, until] {
    ++stats_.offered;
    Rng& rng = engine_->rng();
    const auto& ep = params_.endpoints[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(params_.endpoints.size()) - 1))];
    // Volumes span orders of magnitude ("terabytes to petabytes"); a
    // log-uniform draw keeps both ends of the range represented.
    const double log_bytes =
        rng.uniform(std::log(static_cast<double>(params_.min_bytes)),
                    std::log(static_cast<double>(params_.max_bytes)));
    const auto bytes = static_cast<std::int64_t>(std::exp(log_bytes));
    const SimTime ideal = transfer_time(bytes, params_.reference_rate);
    const double slack = rng.uniform(params_.min_slack, params_.max_slack);
    bod::TransferScheduler::TransferRequest req;
    req.customer = ep.customer;
    req.src_site = ep.src;
    req.dst_site = ep.dst;
    req.bytes = bytes;
    req.deadline = engine_->now() + from_seconds(to_seconds(ideal) * slack);
    req.priority = params_.priority;
    if (auto r = scheduler_->submit(req); r.ok()) {
      ++stats_.accepted;
      accepted_.push_back(r.value());
    } else {
      ++stats_.rejected;
    }
    schedule_next(until);
  });
}

}  // namespace griphon::workload
