// Deadline-driven bulk-transfer demand for the BoD service layer.
//
// Generates the paper's §1 workload — "background, non-interactive, bulk
// data transfers" of terabytes with business deadlines — as a Poisson
// arrival stream of TransferScheduler requests: random site pair, a volume
// drawn log-uniformly between configured bounds, and a deadline set to a
// multiple of the transfer's ideal duration at the reference rate (the
// slack factor controls how tight the deadlines are, i.e. how contended
// the calendar gets).
#pragma once

#include <utility>
#include <vector>

#include "bod/transfer_scheduler.hpp"

namespace griphon::workload {

class BulkDemandGenerator {
 public:
  struct Params {
    double arrivals_per_hour = 6.0;
    std::int64_t min_bytes = 500LL * 1'000'000'000;    ///< 0.5 TB
    std::int64_t max_bytes = 20'000LL * 1'000'000'000;  ///< 20 TB
    /// Deadline = now + slack x ideal duration at `reference_rate`.
    double min_slack = 1.5;
    double max_slack = 6.0;
    DataRate reference_rate = rates::k10G;
    bod::Priority priority = bod::Priority::kBestEffortBulk;
    /// (customer, src, dst) triples demand is drawn from uniformly; the
    /// customer must have a portal registered with the scheduler.
    struct Endpoint {
      CustomerId customer;
      MuxponderId src;
      MuxponderId dst;
    };
    std::vector<Endpoint> endpoints;
  };

  struct Stats {
    std::size_t offered = 0;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
  };

  BulkDemandGenerator(sim::Engine* engine, bod::TransferScheduler* scheduler,
                      Params params)
      : engine_(engine), scheduler_(scheduler), params_(std::move(params)) {}

  /// Start generating arrivals until `until` (simulated time).
  void run_until(SimTime until);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<TransferId>& accepted_transfers()
      const noexcept {
    return accepted_;
  }

 private:
  void schedule_next(SimTime until);

  sim::Engine* engine_;
  bod::TransferScheduler* scheduler_;
  Params params_;
  Stats stats_;
  std::vector<TransferId> accepted_;
};

}  // namespace griphon::workload
