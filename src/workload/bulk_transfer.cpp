#include "workload/bulk_transfer.hpp"

namespace griphon::workload {

JobId BulkScheduler::submit(MuxponderId src, MuxponderId dst,
                            std::int64_t bytes, DataRate rate,
                            JobCallback done) {
  BulkJob job;
  job.id = ids_.next();
  job.src_site = src;
  job.dst_site = dst;
  job.bytes = bytes;
  job.rate = rate;
  job.submitted = engine_->now();
  const JobId id = job.id;
  jobs_[id] = job;

  portal_->connect_bundle(
      src, dst, rate, core::ProtectionMode::kRestorable,
      [this, id, done](Result<core::BundleId> r) {
        BulkJob& j = jobs_.at(id);
        if (!r.ok()) {
          j.failed = true;
          j.failure = r.error().message();
          j.finished = engine_->now();
          ++failed_;
          done(j);
          return;
        }
        j.started = engine_->now();
        const core::BundleId bundle = r.value();
        const DataRate actual =
            portal_->bundle(bundle).parts.empty()
                ? j.rate
                : core::CustomerPortal::decompose(j.rate).total();
        const SimTime duration = transfer_time(j.bytes, actual);
        engine_->schedule(duration, [this, id, bundle, done]() {
          portal_->disconnect_bundle(bundle, [this, id, done](Status) {
            BulkJob& j = jobs_.at(id);
            j.finished = engine_->now();
            ++completed_;
            done(j);
          });
        });
      });
  return id;
}

const BulkJob& BulkScheduler::job(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::out_of_range("BulkScheduler::job: unknown id");
  return it->second;
}

}  // namespace griphon::workload
