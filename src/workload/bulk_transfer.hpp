// Bulk inter-data-center transfers — the workload that motivates GRIPhoN
// (paper §1: replication/backup of terabytes to petabytes, dominated by
// "background, non-interactive, bulk data transfers").
//
// BulkScheduler drives a CustomerPortal: per job it provisions a composite
// bundle at the requested rate, models the transfer time analytically from
// the circuit rate, and releases the bandwidth when the job completes —
// the "adjust bandwidth to demand" usage pattern of the paper.
#pragma once

#include <functional>
#include <map>

#include "core/portal.hpp"

namespace griphon::workload {

struct BulkJob {
  JobId id;
  MuxponderId src_site;
  MuxponderId dst_site;
  std::int64_t bytes = 0;
  DataRate rate;  ///< circuit rate to provision

  // Filled in as the job progresses.
  SimTime submitted{};
  SimTime started{};   ///< bandwidth available (setup done)
  SimTime finished{};  ///< last byte delivered, bandwidth released
  bool failed = false;
  std::string failure;

  [[nodiscard]] SimTime completion_time() const { return finished - submitted; }
  [[nodiscard]] SimTime setup_overhead() const { return started - submitted; }
};

class BulkScheduler {
 public:
  using JobCallback = std::function<void(const BulkJob&)>;

  BulkScheduler(sim::Engine* engine, core::CustomerPortal* portal)
      : engine_(engine), portal_(portal) {}

  /// Submit a transfer of `bytes` at circuit rate `rate`. The callback
  /// fires when the job finishes (or fails to get bandwidth).
  JobId submit(MuxponderId src, MuxponderId dst, std::int64_t bytes,
               DataRate rate, JobCallback done);

  [[nodiscard]] const BulkJob& job(JobId id) const;
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }

 private:
  sim::Engine* engine_;
  core::CustomerPortal* portal_;
  std::map<JobId, BulkJob> jobs_;
  IdAllocator<JobId> ids_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace griphon::workload
