#include "workload/calendar.hpp"

#include <stdexcept>

namespace griphon::workload {

JobId BandwidthCalendar::reserve(MuxponderId src, MuxponderId dst,
                                 DataRate rate, SimTime start,
                                 SimTime duration, Callback on_change) {
  if (start < engine_->now())
    throw std::invalid_argument("calendar: window starts in the past");
  if (duration <= SimTime{})
    throw std::invalid_argument("calendar: empty window");
  Reservation r;
  r.id = ids_.next();
  r.src = src;
  r.dst = dst;
  r.rate = rate;
  r.window_start = start;
  r.window_end = start + duration;
  const JobId id = r.id;
  reservations_[id] = r;
  callbacks_[id] = std::move(on_change);

  const SimTime provision_at =
      start - lead_time_ > engine_->now() ? start - lead_time_ : SimTime{};
  engine_->schedule_at(provision_at, [this, id]() { begin_provisioning(id); });
  return id;
}

void BandwidthCalendar::begin_provisioning(JobId id) {
  Reservation& r = reservations_.at(id);
  r.state = Reservation::State::kProvisioning;
  callbacks_.at(id)(r);
  portal_->connect_bundle(
      r.src, r.dst, r.rate, core::ProtectionMode::kRestorable,
      [this, id](Result<core::BundleId> got) {
        Reservation& r = reservations_.at(id);
        if (!got.ok()) {
          r.state = Reservation::State::kFailed;
          r.failure = got.error().message();
          ++failed_;
          callbacks_.at(id)(r);
          return;
        }
        bundles_[id] = got.value();
        r.bandwidth_ready_at = engine_->now();
        (r.bandwidth_ready_at <= r.window_start ? punctual_ : late_) += 1;

        // Window open (possibly immediately, if provisioning ran long).
        const SimTime open_at =
            std::max(r.window_start, r.bandwidth_ready_at);
        engine_->schedule_at(open_at, [this, id]() {
          Reservation& r = reservations_.at(id);
          r.state = Reservation::State::kActive;
          callbacks_.at(id)(r);
        });
        // Window close: release the bundle.
        engine_->schedule_at(r.window_end, [this, id]() {
          const auto bundle = bundles_.find(id);
          if (bundle == bundles_.end()) return;
          portal_->disconnect_bundle(bundle->second, [this, id](Status) {
            Reservation& r = reservations_.at(id);
            r.state = Reservation::State::kDone;
            callbacks_.at(id)(r);
          });
          bundles_.erase(bundle);
        });
      });
}

const BandwidthCalendar::Reservation& BandwidthCalendar::reservation(
    JobId id) const {
  const auto it = reservations_.find(id);
  if (it == reservations_.end())
    throw std::out_of_range("calendar: unknown reservation");
  return it->second;
}

}  // namespace griphon::workload
