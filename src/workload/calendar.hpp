// Bandwidth calendaring — scheduled BoD windows.
//
// Replication and backup are planned workloads ("The CSP runs backup and
// replication applications", paper §1): the operator knows tonight's
// window in advance. The calendar turns GRIPhoN's *predictable* setup time
// into punctual bandwidth: each reservation starts provisioning one
// lead-time before its window opens so the circuits are live when the
// transfer wants to start, and releases them when the window closes.
#pragma once

#include <functional>
#include <map>

#include "core/portal.hpp"

namespace griphon::workload {

class BandwidthCalendar {
 public:
  struct Reservation {
    enum class State {
      kScheduled,     ///< waiting for its provisioning lead time
      kProvisioning,  ///< bundle setup in flight
      kActive,        ///< window open, bandwidth live
      kDone,          ///< window closed, bandwidth released
      kFailed,        ///< could not be provisioned
    };

    JobId id;
    MuxponderId src;
    MuxponderId dst;
    DataRate rate;
    SimTime window_start{};
    SimTime window_end{};
    State state = State::kScheduled;
    SimTime bandwidth_ready_at{};  ///< when the bundle actually came up
    std::string failure;
  };

  using Callback = std::function<void(const Reservation&)>;

  /// `lead_time` is how early provisioning starts before each window; it
  /// should exceed the worst-case setup of the largest composite (a 40G
  /// bundle is four sequential wavelength setups).
  BandwidthCalendar(sim::Engine* engine, core::CustomerPortal* portal,
                    SimTime lead_time = minutes(8))
      : engine_(engine), portal_(portal), lead_time_(lead_time) {}

  /// Book `rate` between two sites for [start, start+duration). The
  /// callback fires on every state change of the reservation.
  JobId reserve(MuxponderId src, MuxponderId dst, DataRate rate,
                SimTime start, SimTime duration, Callback on_change);

  [[nodiscard]] const Reservation& reservation(JobId id) const;
  [[nodiscard]] std::size_t punctual() const noexcept { return punctual_; }
  [[nodiscard]] std::size_t late() const noexcept { return late_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }

 private:
  void begin_provisioning(JobId id);

  sim::Engine* engine_;
  core::CustomerPortal* portal_;
  SimTime lead_time_;
  std::map<JobId, Reservation> reservations_;
  std::map<JobId, core::BundleId> bundles_;
  std::map<JobId, Callback> callbacks_;
  IdAllocator<JobId> ids_;
  std::size_t punctual_ = 0;
  std::size_t late_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace griphon::workload
