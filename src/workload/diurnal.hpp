// Diurnal traffic profile.
//
// Interactive, end-user-driven traffic between data centers follows the
// day/night cycle; bulk replication is scheduled into the valleys. This
// profile gives benches a deterministic "interactive load" curve so they
// can reason about leftover capacity (the resource NetStitcher-style
// store-and-forward exploits, and that BoD sidesteps by buying rate on
// demand).
#pragma once

#include <cmath>
#include <numbers>

#include "common/units.hpp"

namespace griphon::workload {

class DiurnalProfile {
 public:
  /// `peak`/`trough`: interactive demand at the daily maximum/minimum.
  /// `peak_hour`: local hour of the maximum (e.g. 20 = 8pm).
  DiurnalProfile(DataRate peak, DataRate trough, double peak_hour = 20.0)
      : peak_(peak), trough_(trough), peak_hour_(peak_hour) {}

  /// Interactive demand at simulated time `t` (24 h period).
  [[nodiscard]] DataRate demand_at(SimTime t) const {
    const double hours_of_day =
        std::fmod(to_seconds(t) / 3600.0, 24.0);
    const double phase =
        2.0 * std::numbers::pi * (hours_of_day - peak_hour_) / 24.0;
    const double mid =
        (static_cast<double>(peak_.in_bps()) +
         static_cast<double>(trough_.in_bps())) / 2.0;
    const double amp =
        (static_cast<double>(peak_.in_bps()) -
         static_cast<double>(trough_.in_bps())) / 2.0;
    return DataRate{static_cast<std::int64_t>(mid + amp * std::cos(phase))};
  }

  /// Capacity left for bulk on a pipe of `capacity` at time `t`.
  [[nodiscard]] DataRate leftover_at(SimTime t, DataRate capacity) const {
    const DataRate used = demand_at(t);
    return used >= capacity ? DataRate{} : capacity - used;
  }

 private:
  DataRate peak_;
  DataRate trough_;
  double peak_hour_;
};

}  // namespace griphon::workload
