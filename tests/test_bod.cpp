// Tests for the BoD service layer: reservation calendar, admission
// control, deadline-driven transfer scheduling, and the customer-isolation
// error paths the carrier's multi-tenant story depends on.
#include <gtest/gtest.h>

#include "bod/admission.hpp"
#include "bod/reservation_calendar.hpp"
#include "bod/transfer_scheduler.hpp"
#include "core/scenario.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/bod_demand.hpp"

namespace griphon::bod {
namespace {

const CustomerId kCspA{1};
const CustomerId kCspB{2};

ReservationCalendar::Params cal_params(DataRate capacity) {
  ReservationCalendar::Params p;
  p.slot = minutes(1);
  p.default_link_capacity = capacity;
  return p;
}

// --- ReservationCalendar ----------------------------------------------------

TEST(Calendar, ReserveCommitsEverySlotOnEveryLink) {
  ReservationCalendar cal(cal_params(rates::k40G));
  const std::vector<LinkId> route{LinkId{0}, LinkId{1}};
  const Window w{minutes(10), minutes(20)};
  const auto id = cal.reserve(kCspA, route, rates::k10G, w);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(10)), rates::k10G);
  EXPECT_EQ(cal.committed(LinkId{1}, minutes(19)), rates::k10G);
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(20)), DataRate{});  // half-open
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(9)), DataRate{});
  ASSERT_TRUE(cal.release(id.value()).ok());
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(15)), DataRate{});
  EXPECT_EQ(cal.active_reservations(), 0u);
}

TEST(Calendar, FeasibleRespectsCapacityBudget) {
  ReservationCalendar cal(cal_params(rates::k40G));
  const std::vector<LinkId> route{LinkId{3}};
  ASSERT_TRUE(
      cal.reserve(kCspA, route, DataRate::gbps(30), {minutes(0), minutes(30)})
          .ok());
  EXPECT_TRUE(cal.feasible(route, rates::k10G, {minutes(0), minutes(30)}));
  EXPECT_FALSE(
      cal.feasible(route, DataRate::gbps(20), {minutes(0), minutes(30)}));
  EXPECT_TRUE(
      cal.feasible(route, DataRate::gbps(20), {minutes(30), minutes(60)}));
}

TEST(Calendar, ConflictNamesEarliestFeasibleAlternative) {
  ReservationCalendar cal(cal_params(rates::k10G));
  const std::vector<LinkId> route{LinkId{7}};
  // Saturate [0, 60 min).
  ASSERT_TRUE(
      cal.reserve(kCspA, route, rates::k10G, {minutes(0), minutes(60)}).ok());
  // A conflicting request is rejected with kResourceExhausted and the
  // error names when the same request would fit.
  const auto conflicted =
      cal.reserve(kCspB, route, rates::k10G, {minutes(10), minutes(40)});
  ASSERT_FALSE(conflicted.ok());
  EXPECT_EQ(conflicted.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(conflicted.error().message().find("earliest feasible window"),
            std::string::npos);
  // The alternative is directly queryable — and is the first free slot.
  const auto alt =
      cal.earliest_feasible(route, rates::k10G, minutes(30), minutes(10));
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt.value().start, minutes(60));
  EXPECT_EQ(alt.value().end, minutes(90));
}

TEST(Calendar, EarliestFeasibleSkipsPastBlockedSlots) {
  ReservationCalendar cal(cal_params(rates::k10G));
  const std::vector<LinkId> route{LinkId{0}};
  ASSERT_TRUE(
      cal.reserve(kCspA, route, rates::k10G, {minutes(2), minutes(10)}).ok());
  ASSERT_TRUE(
      cal.reserve(kCspA, route, rates::k10G, {minutes(12), minutes(14)}).ok());
  // A 4-minute window fits in neither the [0,2) gap before the first
  // reservation nor the [10,12) gap between them; first fit is at 14.
  const auto w =
      cal.earliest_feasible(route, rates::k10G, minutes(4), SimTime{});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value().start, minutes(14));
}

TEST(Calendar, TruncateHandsTailBack) {
  ReservationCalendar cal(cal_params(rates::k10G));
  const std::vector<LinkId> route{LinkId{0}};
  const auto id =
      cal.reserve(kCspA, route, rates::k10G, {minutes(0), minutes(60)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cal.truncate(id.value(), minutes(20)).ok());
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(10)), rates::k10G);
  EXPECT_EQ(cal.committed(LinkId{0}, minutes(30)), DataRate{});
  EXPECT_TRUE(cal.feasible(route, rates::k10G, {minutes(20), minutes(60)}));
}

TEST(Calendar, RenderShowsOccupancy) {
  ReservationCalendar cal(cal_params(rates::k10G));
  const std::vector<LinkId> route{LinkId{0}};
  ASSERT_TRUE(
      cal.reserve(kCspA, route, DataRate::gbps(5), {minutes(0), minutes(3)})
          .ok());
  const std::string chart = cal.render(route, SimTime{}, minutes(6));
  EXPECT_NE(chart.find("555..."), std::string::npos);
}

// --- AdmissionController ----------------------------------------------------

TEST(Admission, UnknownCustomerIsPermissionDenied) {
  sim::Engine engine{1};
  AdmissionController adm(&engine);
  const auto s = adm.admit({kCspA, rates::k10G, Priority::kOnDemand});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(adm.stats().rejected_unknown, 1u);
}

TEST(Admission, TokenBucketLimitsRequestRateAndRefills) {
  sim::Engine engine{1};
  AdmissionController adm(&engine);
  AdmissionController::CustomerPolicy policy;
  policy.requests_per_second = 1.0;
  policy.burst = 2.0;
  adm.set_policy(kCspA, policy);
  EXPECT_TRUE(adm.admit({kCspA, rates::k1G, Priority::kOnDemand}).ok());
  EXPECT_TRUE(adm.admit({kCspA, rates::k1G, Priority::kOnDemand}).ok());
  const auto limited = adm.admit({kCspA, rates::k1G, Priority::kOnDemand});
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.error().code(), ErrorCode::kBusy);
  // One second refills one token.
  engine.run_until(seconds(1));
  EXPECT_TRUE(adm.admit({kCspA, rates::k1G, Priority::kOnDemand}).ok());
  EXPECT_EQ(adm.stats().rejected_rate_limit, 1u);
}

TEST(Admission, ClassSharesShrinkTheQuotaForBulk) {
  sim::Engine engine{1};
  AdmissionController adm(&engine);
  AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = DataRate::gbps(100);
  policy.class_share = {1.0, 0.9, 0.7};
  adm.set_policy(kCspA, policy);
  adm.commit(kCspA, DataRate::gbps(65));
  // 65G committed: bulk (70% share) has only 5G headroom, on-demand 35G.
  EXPECT_FALSE(
      adm.admit({kCspA, rates::k10G, Priority::kBestEffortBulk}).ok());
  EXPECT_TRUE(adm.admit({kCspA, rates::k10G, Priority::kOnDemand}).ok());
  const auto over = adm.admit({kCspA, rates::k40G, Priority::kOnDemand});
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().code(), ErrorCode::kResourceExhausted);
  adm.release(kCspA, DataRate::gbps(65));
  EXPECT_TRUE(
      adm.admit({kCspA, rates::k10G, Priority::kBestEffortBulk}).ok());
}

TEST(Admission, OutOfRangePriorityIsInvalidArgument) {
  sim::Engine engine{1};
  AdmissionController adm(&engine);
  adm.set_policy(kCspA, AdmissionController::CustomerPolicy{});
  // A corrupted/raw-cast priority must be rejected, not index past the
  // 3-element class_share array.
  const auto bad = adm.admit({kCspA, rates::k1G, static_cast<Priority>(7)});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInvalidArgument);
}

// --- TransferScheduler ------------------------------------------------------

TransferScheduler::Params sched_params() {
  TransferScheduler::Params p;
  p.setup_pad = minutes(8);
  return p;
}

AdmissionController::CustomerPolicy open_policy(DataRate quota) {
  AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = quota;
  policy.requests_per_second = 1000;
  policy.burst = 1000;
  return policy;
}

TEST(Scheduler, TransferCompletesBeforeDeadline) {
  core::TestbedScenario s(80);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  ReservationCalendar cal(cal_params(rates::k40G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 500'000'000'000;  // 0.5 TB
  req.deadline = hours(2);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());
  s.engine.run();

  const auto status = sched.inspect(s.csp, id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, TransferScheduler::TransferState::kCompleted);
  EXPECT_LE(status.value().expected_completion, req.deadline);
  EXPECT_EQ(sched.stats().deadline_met, 1u);
  EXPECT_EQ(sched.stats().deadline_missed, 0u);
  // All resources handed back: calendar, admission ledger, the portal.
  EXPECT_EQ(cal.active_reservations(), 0u);
  EXPECT_EQ(adm.committed(s.csp), DataRate{});
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
  // Per-customer labeled counters recorded the lifecycle.
  const auto* accepted = tel.metrics().find_counter(
      "griphon_bod_transfers_accepted_total", {{"customer", "1"}});
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->value(), 1u);
  const auto* met = tel.metrics().find_counter(
      "griphon_bod_deadlines_met_total", {{"customer", "1"}});
  ASSERT_NE(met, nullptr);
  EXPECT_EQ(met->value(), 1u);
  EXPECT_TRUE(tel.metrics().invalid_names().empty());
  s.model->attach_telemetry(nullptr);
}

TEST(Scheduler, SplitsAcrossRoutesWhenOneWindowMissesTheDeadline) {
  core::TestbedScenario s(81);
  ReservationCalendar cal(cal_params(rates::k10G));  // one wave per link
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler::Params params;
  params.rate_ladder = {rates::k10G};
  params.setup_pad = minutes(2);
  TransferScheduler sched(s.controller.get(), &cal, &adm, params);
  sched.register_portal(s.portal.get());

  // 1.25 TB at 10G is 1000 s; a single 10G window cannot meet an 800 s
  // deadline, but two parallel 10G windows on disjoint routes can.
  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 1'250'000'000'000;
  req.deadline = seconds(800);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());
  const auto status = sched.inspect(s.csp, id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().pieces, 2);
  EXPECT_EQ(sched.stats().splits, 1u);
  s.engine.run();
  EXPECT_EQ(sched.stats().deadline_met, 1u);
}

TEST(Scheduler, ReschedulesScheduledPieceAfterFiberCut) {
  core::TestbedScenario s(82);
  ReservationCalendar cal(cal_params(rates::k10G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler::Params params;
  params.rate_ladder = {rates::k10G};
  TransferScheduler sched(s.controller.get(), &cal, &adm, params);
  sched.register_portal(s.portal.get());

  // Saturate the first hour of every route out of I so the transfer's
  // window lands in the future (piece scheduled, not yet live).
  for (const LinkId l : {s.topo.i_iv, s.topo.i_iii, s.topo.i_ii})
    ASSERT_TRUE(cal.reserve(CustomerId{99}, {l}, rates::k10G,
                            {SimTime{}, hours(1)})
                    .ok());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 250'000'000'000;  // 200 s at 10G
  req.deadline = hours(3);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());

  // Cut the direct fiber long before the window opens: the scheduler must
  // re-plan the piece onto a surviving route.
  s.engine.schedule_at(minutes(10),
                       [&] { s.model->fail_link(s.topo.i_iv); });
  s.engine.run();

  EXPECT_GE(sched.stats().reschedules, 1u);
  const auto status = sched.inspect(s.csp, id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, TransferScheduler::TransferState::kCompleted);
  EXPECT_EQ(sched.stats().deadline_met, 1u);
}

TEST(Scheduler, AccessPipeSerializesTransfersSharingASite) {
  core::TestbedScenario s(83);
  // Backbone links get a wide-open budget: the only scarce resource in
  // this test is the sites' 4x10G NTE access pipe, which the scheduler
  // must meter through the calendar rather than discover via failed
  // setups.
  ReservationCalendar cal(cal_params(DataRate::gbps(160)));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(200)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 1'000'000'000'000;  // 200 s at the 40G top rate
  req.deadline = hours(4);
  const auto first = sched.submit(req);
  const auto second = sched.submit(req);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  const auto planned_a = sched.inspect(s.csp, first.value());
  const auto planned_b = sched.inspect(s.csp, second.value());
  ASSERT_TRUE(planned_a.ok());
  ASSERT_TRUE(planned_b.ok());
  // Both transfers want the full 40G pipe at site I; the calendar can only
  // promise it to one at a time, so the second is planned strictly after
  // the first instead of colliding with it at setup.
  EXPECT_GT(planned_b.value().expected_completion,
            planned_a.value().expected_completion);

  s.engine.run();
  EXPECT_EQ(sched.stats().deadline_met, 2u);
  // No piece ever found the NTE ports taken: access contention was
  // resolved at planning time, not by retrying failed setups.
  EXPECT_EQ(sched.stats().setup_retries, 0u);
  EXPECT_EQ(cal.active_reservations(), 0u);
}

TEST(Scheduler, AccessPipeAccountsForDirectPortalConnections) {
  core::TestbedScenario s(83);
  ReservationCalendar cal(cal_params(DataRate::gbps(160)));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(200)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  // A connection ordered straight through the portal lights an NTE port
  // the calendar never saw. The scheduler must still notice: a 40G plan
  // would promise a rate the three remaining 10G ports cannot carry, and
  // before the fix it retried the doomed setup and re-planned the same
  // doomed window forever while the transfer sat "scheduled" past its
  // deadline.
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [](Result<ConnectionId> r) { ASSERT_TRUE(r.ok()); });
  s.engine.run();

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 1'000'000'000'000;
  req.deadline = s.engine.now() + hours(4);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());

  s.engine.run();
  const auto status = sched.inspect(s.csp, id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, TransferScheduler::TransferState::kCompleted);
  EXPECT_EQ(sched.stats().deadline_met, 1u);
  // Planning capped the rate at the free 3x10G, so no setup ever collided
  // with the foreign connection's port.
  EXPECT_EQ(sched.stats().setup_retries, 0u);
  EXPECT_EQ(sched.stats().reschedules, 0u);
}

TEST(Scheduler, PartialSplitPlanIsRejectedAndRolledBack) {
  core::TestbedScenario s(87);
  const auto cp = cal_params(rates::k10G);
  ReservationCalendar cal(cp);
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler::Params params;
  params.rate_ladder = {rates::k10G};
  params.setup_pad = minutes(2);
  params.max_pieces = 2;
  TransferScheduler sched(s.controller.get(), &cal, &adm, params);
  sched.register_portal(s.portal.get());

  // Only the direct I-IV fiber has calendar space, and only a 10-minute
  // gap: room for half the bytes but not all of them, and not for a
  // second piece either. The final split attempt plans piece 1, fails on
  // piece 2, and the half-plan must be released — not silently accepted
  // as a "complete" transfer carrying half the volume.
  ASSERT_TRUE(cal.reserve(CustomerId{99}, {s.topo.i_iii}, rates::k10G,
                          {SimTime{}, cp.horizon})
                  .ok());
  ASSERT_TRUE(cal.reserve(CustomerId{99}, {s.topo.i_ii}, rates::k10G,
                          {SimTime{}, cp.horizon})
                  .ok());
  ASSERT_TRUE(cal.reserve(CustomerId{99}, {s.topo.i_iv}, rates::k10G,
                          {minutes(10), cp.horizon})
                  .ok());
  const auto before = cal.active_reservations();

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 1'000'000'000'000;  // 800 s at 10G; half fits the gap
  req.deadline = hours(2);
  const auto rejected = sched.submit(req);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(cal.active_reservations(), before);
  EXPECT_EQ(adm.committed(s.csp), DataRate{});
  EXPECT_EQ(sched.stats().accepted, 0u);
}

TEST(Scheduler, CancelDuringSetupTearsDownTheLateBundle) {
  core::TestbedScenario s(88);
  ReservationCalendar cal(cal_params(rates::k40G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 500'000'000'000;
  req.deadline = hours(2);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());

  // The window opens at t=0 so setup starts immediately, but bundle setup
  // takes tens of sim-seconds. Cancel while it is in flight: the connect
  // result arrives for a cancelled transfer and its bundle must be torn
  // down, not leaked as permanently-lit NTE ports.
  s.engine.run_until(seconds(1));
  ASSERT_TRUE(sched.cancel(s.csp, id.value()).ok());
  s.engine.run();

  EXPECT_EQ(s.portal->provisioned(), DataRate{});
  EXPECT_EQ(cal.active_reservations(), 0u);
  EXPECT_EQ(adm.committed(s.csp), DataRate{});
}

TEST(Scheduler, SetupRacingAFiberCutDoesNotBindAStaleRoute) {
  core::TestbedScenario s(89);
  ReservationCalendar cal(cal_params(rates::k10G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  TransferScheduler::Params params;
  params.rate_ladder = {rates::k10G};
  TransferScheduler sched(s.controller.get(), &cal, &adm, params);
  sched.register_portal(s.portal.get());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 250'000'000'000;  // 200 s at 10G
  req.deadline = hours(3);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());

  // Cut the direct fiber while the first setup is still in flight. The
  // piece is re-planned onto a surviving route; the old setup's result —
  // success or failure — is from a superseded epoch and must neither bind
  // its bundle to the new plan nor re-enter the retry path.
  s.engine.run_until(seconds(1));
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();

  const auto status = sched.inspect(s.csp, id.value());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state,
            TransferScheduler::TransferState::kCompleted);
  EXPECT_EQ(sched.stats().completed, 1u);
  // Every bundle the race created was handed back.
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
  EXPECT_EQ(cal.active_reservations(), 0u);
  EXPECT_EQ(adm.committed(s.csp), DataRate{});
}

// --- customer isolation error paths ----------------------------------------

TEST(Isolation, OverQuotaTransferIsResourceExhausted) {
  core::TestbedScenario s(83);
  ReservationCalendar cal(cal_params(rates::k40G));
  AdmissionController adm(&s.engine);
  // Quota below the smallest service rate: nothing can be admitted.
  adm.set_policy(s.csp, open_policy(DataRate::mbps(500)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 1'000'000'000;
  req.deadline = hours(2);
  const auto rejected = sched.submit(req);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(sched.stats().rejected, 1u);
  // Nothing leaked into the calendar.
  EXPECT_EQ(cal.active_reservations(), 0u);
}

TEST(Isolation, CustomersCannotInspectOrCancelEachOther) {
  core::TestbedScenario s(84);
  const MuxponderId site_b =
      s.model->add_customer_site(kCspB, "DC-B", s.topo.iii).nte;
  (void)site_b;
  core::CustomerPortal portal_b(s.controller.get(), kCspB,
                                DataRate::gbps(40));
  ReservationCalendar cal(cal_params(rates::k40G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(100)));
  adm.set_policy(kCspB, open_policy(DataRate::gbps(100)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());
  sched.register_portal(&portal_b);

  TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 100'000'000'000;
  req.deadline = hours(2);
  const auto id = sched.submit(req);
  ASSERT_TRUE(id.ok());

  // Customer B can neither observe nor destroy A's transfer.
  const auto peeked = sched.inspect(kCspB, id.value());
  ASSERT_FALSE(peeked.ok());
  EXPECT_EQ(peeked.error().code(), ErrorCode::kPermissionDenied);
  const auto cancelled = sched.cancel(kCspB, id.value());
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.error().code(), ErrorCode::kPermissionDenied);
  // A can cancel its own; resources come back.
  ASSERT_TRUE(sched.cancel(s.csp, id.value()).ok());
  EXPECT_EQ(cal.active_reservations(), 0u);
  EXPECT_EQ(adm.committed(s.csp), DataRate{});
}

TEST(Isolation, PortalRejectionsAreCountedPerCustomer) {
  core::TestbedScenario s(85);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  // A connection owned by customer 1; customer 2's portal must not be able
  // to release it, and the rejection lands in the labeled reject counter.
  std::optional<ConnectionId> conn;
  s.portal->connect(s.site_i, s.site_iv, rates::k1G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      ASSERT_TRUE(r.ok());
                      conn = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(conn.has_value());
  core::CustomerPortal portal_b(s.controller.get(), kCspB,
                                DataRate::gbps(40));
  std::optional<Status> release;
  portal_b.disconnect(*conn, [&](Status st) { release = st; });
  s.engine.run();
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->error().code(), ErrorCode::kPermissionDenied);
  const auto* rejects = tel.metrics().find_counter(
      "griphon_portal_rejects_total",
      {{"customer", "2"}, {"reason", "isolation"}});
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->value(), 1u);
  s.model->attach_telemetry(nullptr);
}

// --- demand generator -------------------------------------------------------

TEST(BulkDemand, GeneratesAcceptedTransfers) {
  core::TestbedScenario s(86);
  ReservationCalendar cal(cal_params(rates::k40G));
  AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, open_policy(DataRate::gbps(120)));
  TransferScheduler sched(s.controller.get(), &cal, &adm, sched_params());
  sched.register_portal(s.portal.get());

  workload::BulkDemandGenerator::Params p;
  p.arrivals_per_hour = 4;
  p.min_bytes = 100'000'000'000;
  p.max_bytes = 2'000'000'000'000;
  p.endpoints = {{s.csp, s.site_i, s.site_iv}, {s.csp, s.site_i, s.site_iii}};
  workload::BulkDemandGenerator demand(&s.engine, &sched, p);
  demand.run_until(hours(12));
  s.engine.run();

  const auto& st = demand.stats();
  EXPECT_GT(st.offered, 20u);
  EXPECT_EQ(st.offered, st.accepted + st.rejected);
  EXPECT_GT(st.accepted, 0u);
  EXPECT_EQ(sched.stats().accepted, st.accepted);
  // Every accepted transfer ran to completion (the testbed is healthy).
  EXPECT_EQ(sched.stats().completed, st.accepted);
  // Most deadlines drawn with slack >= 1.5 are met on an idle testbed.
  EXPECT_GT(sched.stats().deadline_met, 0u);
}

}  // namespace
}  // namespace griphon::bod
