// Chaos-engineering tests: fault plans, the injector, the controller's
// retry / circuit-breaker / resync machinery, and full-stack soak runs
// under three fixed-seed fault plans.
//
// The soaks drive the complete controller + BoD stack (portal traffic,
// deadline-driven transfers) with faults armed, then disarm, heal, drain
// and audit. Invariants: no device in the plant holds configuration at
// the end, every accepted transfer reaches an explicit terminal state,
// and two runs of the same (plan, seed) produce identical histories.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bod/observability.hpp"
#include "bod/transfer_scheduler.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/fault_plan.hpp"
#include "core/ems_health.hpp"
#include "core/failure_manager.hpp"
#include "core/observability.hpp"
#include "core/scenario.hpp"
#include "ems/ems_server.hpp"
#include "proto/client.hpp"
#include "reopt/service.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace griphon::chaos {
namespace {

using BreakerState = core::EmsHealthTracker::BreakerState;

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlanTest, PresetsByName) {
  for (const char* name :
       {"none", "ems-flaps", "channel-loss", "device-faults", "combined",
        "conduit-cut", "failure-storm"}) {
    const auto plan = FaultPlan::preset(name);
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_EQ(plan.value().name, name);
  }
  const auto bad = FaultPlan::preset("gremlins");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kNotFound);
}

TEST(FaultPlanTest, ParseOverridesPresetFields) {
  const auto plan = FaultPlan::parse(
      "# operator-authored plan\n"
      "preset=ems-flaps\n"
      "name=my-plan\n"
      "ems.nack_probability=0.2\n"
      "channel.extra_delay=0.5\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().name, "my-plan");
  EXPECT_DOUBLE_EQ(plan.value().ems.nack_probability, 0.2);
  // Untouched fields keep the preset's values.
  EXPECT_DOUBLE_EQ(plan.value().ems.slow_probability,
                   FaultPlan::ems_flaps().ems.slow_probability);
  EXPECT_EQ(plan.value().channel.extra_delay, milliseconds(500));
}

TEST(FaultPlanTest, ParseRejectsBadInput) {
  const auto out_of_range = FaultPlan::parse("ems.nack_probability=1.5\n");
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.error().code(), ErrorCode::kInvalidArgument);

  const auto unknown = FaultPlan::parse("ems.blink_rate=3\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code(), ErrorCode::kInvalidArgument);

  const auto garbage = FaultPlan::parse("just words\n");
  ASSERT_FALSE(garbage.ok());
}

TEST(FaultPlanTest, ScalingMultipliesProbabilitiesAndDividesIntervals) {
  const FaultPlan base = FaultPlan::combined();
  const FaultPlan hot = base.scaled(2.0);
  EXPECT_DOUBLE_EQ(hot.ems.nack_probability, base.ems.nack_probability * 2.0);
  EXPECT_DOUBLE_EQ(hot.channel.drop_probability,
                   base.channel.drop_probability * 2.0);
  EXPECT_EQ(hot.ems.mean_crash_interval,
            from_seconds(to_seconds(base.ems.mean_crash_interval) / 2.0));

  // Absurd intensities clamp: probabilities never reach 1.0.
  const FaultPlan melted = base.scaled(1000.0);
  EXPECT_LE(melted.ems.nack_probability, 0.95);
  EXPECT_LE(melted.channel.drop_probability, 0.95);

  // Intensity zero turns every fault off.
  const FaultPlan off = base.scaled(0.0);
  EXPECT_DOUBLE_EQ(off.ems.nack_probability, 0.0);
  EXPECT_FALSE(off.wants_channel_faults());
  EXPECT_EQ(off.ems.mean_crash_interval, SimTime{});
  EXPECT_EQ(off.device.mean_ot_fault_interval, SimTime{});
}

TEST(FaultPlanTest, RenderNamesThePlan) {
  const std::string text = FaultPlan::ems_flaps().render();
  EXPECT_NE(text.find("ems-flaps"), std::string::npos);
}

// --- FaultInjector hooks ----------------------------------------------------

TEST(Injector, DisarmedHooksAreNeutral) {
  core::TestbedScenario s(3);
  FaultInjector inj(s.model.get(), FaultPlan::combined(), 42);
  const auto d = inj.on_frame();
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(d.extra_delay, SimTime{});
  EXPECT_TRUE(
      inj.on_command("roadm-ems",
                     proto::Message{proto::OtTune{TransponderId{0}, 1}})
          .ok());
  EXPECT_DOUBLE_EQ(inj.latency_scale("roadm-ems"), 1.0);
}

TEST(Injector, ArmDisarmIsLoggedAndIdempotent) {
  core::TestbedScenario s(4);
  FaultInjector inj(s.model.get(), FaultPlan::ems_flaps(), 42);
  inj.arm();
  inj.arm();  // no-op
  EXPECT_TRUE(inj.armed());
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[0].kind, "arm");
  EXPECT_EQ(inj.log()[1].kind, "disarm");
  EXPECT_NE(inj.render_log().find("arm"), std::string::npos);
}

// --- EmsHealthTracker (circuit breaker) -------------------------------------

TEST(EmsHealth, BreakerLifecycle) {
  sim::Engine engine;
  core::EmsHealthTracker::Params p;
  p.failure_threshold = 3;
  p.open_cooldown = seconds(45);
  core::EmsHealthTracker hb(&engine, p);

  // Closed: everything admitted; a success resets the timeout run.
  EXPECT_TRUE(hb.allow("roadm-ems"));
  hb.record_timeout("roadm-ems");
  hb.record_timeout("roadm-ems");
  hb.record_success("roadm-ems");
  EXPECT_EQ(hb.consecutive_timeouts("roadm-ems"), 0);
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kClosed);

  // Three consecutive timeouts trip it open.
  hb.record_timeout("roadm-ems");
  hb.record_timeout("roadm-ems");
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kClosed);
  hb.record_timeout("roadm-ems");
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kOpen);
  EXPECT_FALSE(hb.allow("roadm-ems"));
  EXPECT_EQ(hb.stats().opens, 1u);
  EXPECT_EQ(hb.stats().fast_failures, 1u);
  // Domains are independent.
  EXPECT_TRUE(hb.allow("otn-ems"));

  // After the cooldown one probe is admitted; a second caller is shed.
  engine.schedule(seconds(50), [] {});
  engine.run();
  EXPECT_TRUE(hb.allow("roadm-ems"));
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kHalfOpen);
  EXPECT_FALSE(hb.allow("roadm-ems"));

  // A failed probe re-opens immediately (no threshold counting).
  hb.record_timeout("roadm-ems");
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kOpen);
  EXPECT_EQ(hb.stats().opens, 2u);

  // Cooldown again; this time the probe succeeds and the breaker closes.
  engine.schedule(seconds(50), [] {});
  engine.run();
  EXPECT_TRUE(hb.allow("roadm-ems"));
  hb.record_success("roadm-ems");
  EXPECT_EQ(hb.state("roadm-ems"), BreakerState::kClosed);
  EXPECT_EQ(hb.stats().closes, 1u);
  EXPECT_TRUE(hb.allow("roadm-ems"));
}

// --- EMS response cache (LRU) -----------------------------------------------

TEST(EmsCache, LruEvictionWithReplayRefresh) {
  sim::Engine engine;
  proto::ControlChannel chan(&engine, proto::ControlChannel::Params{});
  ems::EmsServer server(&engine, &chan.b(),
                        ems::EmsLatencyProfile::testbed_2011(), "roadm-ems");
  telemetry::Telemetry tel(&engine);
  server.set_telemetry(&tel);
  dwdm::Transponder ot(TransponderId{0}, NodeId{0}, rates::k10G);
  server.manage_ot(&ot);
  server.set_response_cache_capacity(2);

  int responses = 0;
  chan.a().on_receive([&](const proto::Bytes& b) {
    EXPECT_TRUE(proto::decode_frame(b).ok());
    ++responses;
  });
  const auto send = [&](std::uint64_t id) {
    chan.a().send(proto::encode_frame(
        id, proto::Message{proto::OtTune{TransponderId{0}, 4}}));
    engine.run();
  };

  send(1);
  send(2);
  EXPECT_EQ(server.commands_executed(), 2u);
  EXPECT_EQ(server.response_cache_size(), 2u);
  EXPECT_EQ(server.cache_evictions(), 0u);

  // A duplicate of id 1 replays from the cache (no re-execution) and
  // refreshes its recency, so id 2 is now the coldest entry.
  send(1);
  EXPECT_EQ(server.commands_executed(), 2u);

  // A new id past capacity evicts the coldest (id 2), not the refreshed 1.
  send(3);
  EXPECT_EQ(server.cache_evictions(), 1u);
  EXPECT_EQ(server.response_cache_size(), 2u);
  send(1);
  EXPECT_EQ(server.commands_executed(), 3u);  // still a replay

  // Id 2 was evicted: re-sending it re-executes the command.
  send(2);
  EXPECT_EQ(server.commands_executed(), 4u);
  EXPECT_EQ(server.cache_evictions(), 2u);
  EXPECT_EQ(responses, 6);

  const auto* ev =
      tel.metrics().find_counter("griphon_ems_roadm_cache_evictions_total");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->value(), 2u);
  server.set_telemetry(nullptr);
}

// --- proto::RequestClient vs duplicated responses ---------------------------

/// Echo server that answers every request twice — the pathological EMS a
/// duplicating control channel can also produce.
struct DoubleEchoServer {
  explicit DoubleEchoServer(proto::Endpoint* ep) : ep_(ep) {
    ep_->on_receive([this](const proto::Bytes& b) {
      const auto f = proto::decode_frame(b);
      ASSERT_TRUE(f.ok());
      ++requests;
      proto::Response r;
      r.aux = f.value().request_id;
      ep_->send(proto::encode_frame(f.value().request_id, proto::Message{r}));
      ep_->send(proto::encode_frame(f.value().request_id, proto::Message{r}));
    });
  }
  proto::Endpoint* ep_;
  int requests = 0;
};

TEST(RequestClientChaos, DuplicateResponseInvokesCallbackOnce) {
  sim::Engine engine;
  proto::ControlChannel chan(&engine, proto::ControlChannel::Params{});
  proto::RequestClient client(&engine, &chan.a(),
                              proto::RequestClient::Params{});
  DoubleEchoServer server(&chan.b());

  int calls = 0;
  client.request(proto::Message{proto::OtTune{TransponderId{1}, 4}},
                 [&](Result<proto::Response> r) {
                   ++calls;
                   EXPECT_TRUE(r.ok());
                 });
  engine.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.pending(), 0u);
  // The stale duplicate must not corrupt timer bookkeeping: no timeout
  // fires later, and the client keeps serving fresh requests.
  EXPECT_EQ(client.timeouts(), 0u);
  int calls2 = 0;
  client.request(proto::Message{proto::OtTune{TransponderId{1}, 5}},
                 [&](Result<proto::Response> r) {
                   ++calls2;
                   EXPECT_TRUE(r.ok());
                 });
  engine.run();
  EXPECT_EQ(calls2, 1);
  EXPECT_EQ(client.timeouts(), 0u);
}

/// Channel hook that duplicates every frame (requests and responses).
struct AlwaysDuplicate final : proto::ChannelFaultHook {
  proto::FaultDecision on_frame() override {
    proto::FaultDecision d;
    d.duplicate = true;
    return d;
  }
};

/// Single-answer echo server (duplication is the channel's job here).
struct EchoServer {
  explicit EchoServer(proto::Endpoint* ep) : ep_(ep) {
    ep_->on_receive([this](const proto::Bytes& b) {
      const auto f = proto::decode_frame(b);
      ASSERT_TRUE(f.ok());
      ++requests;
      proto::Response r;
      ep_->send(proto::encode_frame(f.value().request_id, proto::Message{r}));
    });
  }
  proto::Endpoint* ep_;
  int requests = 0;
};

TEST(RequestClientChaos, ChannelDuplicationIsHarmless) {
  sim::Engine engine;
  proto::ControlChannel chan(&engine, proto::ControlChannel::Params{});
  AlwaysDuplicate hook;
  chan.set_fault_hook(&hook);
  proto::RequestClient client(&engine, &chan.a(),
                              proto::RequestClient::Params{});
  EchoServer server(&chan.b());

  int calls = 0;
  client.request(proto::Message{proto::OtTune{TransponderId{1}, 4}},
                 [&](Result<proto::Response> r) {
                   ++calls;
                   EXPECT_TRUE(r.ok());
                 });
  engine.run();
  EXPECT_EQ(server.requests, 2);  // the request really was duplicated
  EXPECT_EQ(calls, 1);            // ...and the callback still fired once
  EXPECT_EQ(client.pending(), 0u);
  EXPECT_EQ(client.timeouts(), 0u);
  chan.set_fault_hook(nullptr);
}

// --- FailureManager correlation under delay / reorder -----------------------

Alarm line_alarm(std::uint64_t id, AlarmType type, LinkId link,
                 const std::string& source) {
  Alarm a;
  a.id = AlarmId{id};
  a.type = type;
  a.source = source;
  a.link = link;
  return a;
}

TEST(FailureCorrelation, BothEndsInsideWindowLocalizeOnce) {
  sim::Engine engine;
  core::FailureManager fm(&engine, core::FailureManager::Params{});
  int events = 0;
  std::vector<LinkId> last;
  fm.on_failure([&](const core::FailureManager::FailureEvent& event) {
    ++events;
    last = event.links;
  });
  const LinkId cut{7};
  engine.schedule(SimTime{}, [&] {
    fm.ingest(line_alarm(1, AlarmType::kLos, cut, "roadm/1"));
  });
  engine.schedule(milliseconds(900), [&] {
    fm.ingest(line_alarm(2, AlarmType::kLos, cut, "roadm/2"));
  });
  engine.run();
  EXPECT_EQ(events, 1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last.front(), cut);
  EXPECT_TRUE(fm.believed_failed().contains(cut));
}

TEST(FailureCorrelation, StragglerOutsideWindowDoesNotRelocalize) {
  sim::Engine engine;
  core::FailureManager fm(&engine, core::FailureManager::Params{});
  int failures = 0;
  int repairs = 0;
  fm.on_failure(
      [&](const core::FailureManager::FailureEvent&) { ++failures; });
  fm.on_repair([&](const std::vector<LinkId>&) { ++repairs; });
  const LinkId cut{3};
  // The far end's alarm is delayed well past the 2.5 s holddown: it opens
  // a second correlation window, but the link is already believed failed,
  // so the same cut must not localize as two failures.
  engine.schedule(SimTime{}, [&] {
    fm.ingest(line_alarm(1, AlarmType::kLos, cut, "roadm/1"));
  });
  engine.schedule(seconds(4), [&] {
    fm.ingest(line_alarm(2, AlarmType::kLos, cut, "roadm/2"));
  });
  engine.run();
  EXPECT_EQ(failures, 1);
  EXPECT_TRUE(fm.believed_failed().contains(cut));

  // Same discipline on repair: a delayed second CLEAR finds the link
  // already believed healthy and stays silent.
  engine.schedule(SimTime{}, [&] {
    fm.ingest(line_alarm(3, AlarmType::kClear, cut, "roadm/1"));
  });
  engine.schedule(seconds(4), [&] {
    fm.ingest(line_alarm(4, AlarmType::kClear, cut, "roadm/2"));
  });
  engine.run();
  EXPECT_EQ(repairs, 1);
  EXPECT_FALSE(fm.believed_failed().contains(cut));
}

TEST(FailureCorrelation, ReorderedInterleavedAlarmsGroupIntoOneEvent) {
  sim::Engine engine;
  core::FailureManager fm(&engine, core::FailureManager::Params{});
  int events = 0;
  std::set<LinkId> seen;
  fm.on_failure([&](const core::FailureManager::FailureEvent& event) {
    ++events;
    seen.insert(event.links.begin(), event.links.end());
  });
  const LinkId cut_a{1};
  const LinkId cut_b{2};
  // Two simultaneous cuts whose alarms arrive shuffled (far ends first,
  // links interleaved) within one window: one localization event naming
  // both links, not four.
  engine.schedule(SimTime{}, [&] {
    fm.ingest(line_alarm(1, AlarmType::kLos, cut_b, "roadm/9"));
  });
  engine.schedule(milliseconds(200), [&] {
    fm.ingest(line_alarm(2, AlarmType::kLos, cut_a, "roadm/4"));
  });
  engine.schedule(milliseconds(400), [&] {
    fm.ingest(line_alarm(3, AlarmType::kLos, cut_b, "roadm/8"));
  });
  engine.schedule(milliseconds(600), [&] {
    fm.ingest(line_alarm(4, AlarmType::kLos, cut_a, "roadm/5"));
  });
  engine.run();
  EXPECT_EQ(events, 1);
  EXPECT_EQ(seen, (std::set<LinkId>{cut_a, cut_b}));
}

// --- controller reconciliation (resync) -------------------------------------

using ResyncReport = core::GriphonController::ResyncReport;

std::optional<ResyncReport> run_resync(core::TestbedScenario& s) {
  std::optional<ResyncReport> report;
  s.controller->resync([&](Result<ResyncReport> r) {
    ASSERT_TRUE(r.ok()) << r.error().message();
    report = r.value();
  });
  s.engine.run();
  return report;
}

TEST(Resync, CleanPlantAuditsClean) {
  core::TestbedScenario s(7);
  s.engine.run();
  ASSERT_TRUE(s.controller->quiescent());
  const auto report = run_resync(s);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->total_leaks(), 0u);
  EXPECT_EQ(report->drifted_connections, 0u);
  EXPECT_EQ(report->repair_commands, 0u);
  EXPECT_EQ(s.controller->stats().resync_runs, 1u);
}

TEST(Resync, LeakedDeviceConfigIsSweptClean) {
  core::TestbedScenario s(8);
  // Configuration appears behind the controller's back — the residue an
  // EMS crash mid-teardown leaves: a stray FXC cross-connect and a tuned
  // OT no connection owns.
  fxc::Fxc& f = s.model->fxc_at(s.model->graph().nodes().front().id);
  ASSERT_TRUE(f.connect(PortId{0}, PortId{1}).ok());
  dwdm::Transponder* ot = s.model->ots().front().get();
  ASSERT_TRUE(ot->tune(3).ok());

  const auto report = run_resync(s);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->leaked_fxc_connects, 1u);
  EXPECT_EQ(report->leaked_ots, 1u);
  EXPECT_EQ(report->drifted_connections, 0u);
  EXPECT_GE(report->repair_commands, 2u);

  // The release commands ran: the plant is clean again.
  EXPECT_EQ(f.active_connections(), 0u);
  EXPECT_EQ(ot->state(), dwdm::Transponder::State::kIdle);
  EXPECT_EQ(s.controller->stats().resync_leaks, 2u);
}

TEST(Resync, DriftedConnectionIsReconfigured) {
  core::TestbedScenario s(9);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      ASSERT_TRUE(r.ok()) << r.error().message();
                      id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());

  // An EMS restart wiped part of the connection's device state: drop one
  // of its FXC cross-connects directly on the device.
  fxc::Fxc* victim = nullptr;
  std::pair<PortId, PortId> cc;
  for (const auto& node : s.model->graph().nodes()) {
    fxc::Fxc& f = s.model->fxc_at(node.id);
    const auto connects = f.cross_connects();
    if (!connects.empty()) {
      victim = &f;
      cc = connects.front();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(victim->disconnect(cc.first).ok());
  EXPECT_FALSE(victim->connected(cc.first));

  const auto report = run_resync(s);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->drifted_connections, 1u);
  EXPECT_GE(report->repair_commands, 1u);
  // The missing cross-connect was re-issued.
  EXPECT_TRUE(victim->connected(cc.first));
  EXPECT_EQ(s.controller->stats().resync_drift, 1u);

  // The repaired connection releases normally.
  std::optional<Status> released;
  s.portal->disconnect(*id, [&](Status st) { released = st; });
  s.engine.run();
  ASSERT_TRUE(released.has_value());
  EXPECT_TRUE(released->ok());
  EXPECT_EQ(victim->active_connections(), 0u);
}

// --- breaker integration: dead EMS -> fail fast -> recover ------------------

TEST(BreakerIntegration, DeadEmsTripsBreakerThenServiceRecovers) {
  core::TestbedScenario s(11);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  // The ROADM EMS dies for ten minutes. Setup commands against it time
  // out; after the consecutive-timeout threshold the breaker opens and
  // the rest fail fast instead of burning protocol timeouts.
  s.model->roadm_ems().crash_restart(minutes(10));
  std::optional<Result<ConnectionId>> res;
  s.portal->connect(s.site_i, s.site_iii, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) { res = r; });
  s.engine.run_until(minutes(8));
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->ok());
  EXPECT_EQ(s.controller->ems_health().state("roadm-ems"),
            BreakerState::kOpen);
  EXPECT_GE(s.controller->stats().commands_retried, 1u);

  // The transition is visible in the Prometheus exposition.
  const auto* gauge = tel.metrics().find_gauge(
      "griphon_controller_ems_breaker_open", {{"domain", "roadm-ems"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);
  EXPECT_NE(
      tel.metrics().to_prometheus().find("griphon_controller_ems_breaker"),
      std::string::npos);

  // EMS restarts (announcing itself with kEmsRestart -> automatic
  // reconciliation); the next connect closes the breaker via the
  // half-open probe and service resumes.
  s.engine.run();
  EXPECT_GE(s.controller->stats().resync_runs, 1u);
  std::optional<ConnectionId> got;
  for (int attempt = 0; attempt < 3 && !got; ++attempt) {
    std::optional<Result<ConnectionId>> r2;
    s.portal->connect(s.site_i, s.site_iii, rates::k10G,
                      core::ProtectionMode::kUnprotected,
                      [&](Result<ConnectionId> r) { r2 = r; });
    s.engine.run();
    ASSERT_TRUE(r2.has_value());
    if (r2->ok()) got = r2->value();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(s.controller->ems_health().state("roadm-ems"),
            BreakerState::kClosed);
  EXPECT_GE(s.controller->ems_health().stats().opens, 1u);
  EXPECT_GE(s.controller->ems_health().stats().closes, 1u);

  std::optional<Status> released;
  s.portal->disconnect(*got, [&](Status st) { released = st; });
  s.engine.run();
  ASSERT_TRUE(released.has_value());
  EXPECT_TRUE(released->ok());
  EXPECT_TRUE(tel.metrics().invalid_names().empty());
  s.model->attach_telemetry(nullptr);
}

// --- full-stack chaos soaks -------------------------------------------------

bod::ReservationCalendar::Params soak_cal_params() {
  bod::ReservationCalendar::Params p;
  p.slot = minutes(1);
  p.default_link_capacity = rates::k40G;
  return p;
}

bod::AdmissionController::CustomerPolicy soak_policy() {
  bod::AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = DataRate::gbps(100);
  policy.requests_per_second = 1000;
  policy.burst = 1000;
  return policy;
}

struct SoakOutcome {
  std::string digest;
  bool ran = false;
};

/// One full-stack run: portal traffic + deadline transfers under an armed
/// fault plan, then disarm, heal, drain, audit. Returns a digest of every
/// observable counter so two same-seed runs can be compared bit-for-bit.
SoakOutcome run_chaos_soak(std::uint64_t seed, const FaultPlan& plan) {
  SoakOutcome out;
  core::TestbedScenario s(seed);
  s.model->trace().set_capacity(4096);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  FaultInjector injector(s.model.get(), plan, seed * 7919 + 17);
  injector.set_telemetry(&tel);
  injector.arm();

  // Gauge sampler in manual mode: the soak relies on unbounded engine.run()
  // to drain, which a recurring tick would never let return, so probes are
  // snapshotted at round boundaries instead of on a sim-clock period.
  telemetry::GaugeSampler sampler(&s.engine, &tel);
  core::install_standard_probes(sampler, *s.controller, *s.model);

  bod::ReservationCalendar cal(soak_cal_params());
  bod::AdmissionController adm(&s.engine);
  adm.set_policy(s.csp, soak_policy());
  bod::TransferScheduler::Params sp;
  sp.setup_pad = minutes(8);
  sp.unavailable_defer = seconds(30);
  bod::TransferScheduler sched(s.controller.get(), &cal, &adm, sp);
  sched.register_portal(s.portal.get());
  {
    std::vector<LinkId> links;
    for (const auto& l : s.model->graph().links()) links.push_back(l.id);
    bod::install_calendar_probes(sampler, cal, s.engine, std::move(links));
  }

  const MuxponderId sites[3] = {s.site_i, s.site_iii, s.site_iv};
  std::vector<TransferId> transfers;
  const auto submit = [&](std::size_t a, std::size_t b, std::int64_t bytes,
                          SimTime deadline) {
    bod::TransferScheduler::TransferRequest req;
    req.customer = s.csp;
    req.src_site = sites[a];
    req.dst_site = sites[b];
    req.bytes = bytes;
    req.deadline = deadline;
    const auto r = sched.submit(req);
    if (r.ok()) transfers.push_back(r.value());
  };
  submit(0, 2, 300'000'000'000, hours(3));
  submit(1, 0, 200'000'000'000, hours(2));
  submit(2, 1, 400'000'000'000, hours(4));

  // Mixed foreground traffic while the faults fire.
  Rng rng(seed * 31 + 7);
  std::vector<ConnectionId> live;
  for (int round = 0; round < 30; ++round) {
    if (round == 10) submit(0, 1, 250'000'000'000, s.engine.now() + hours(3));
    const double dice = rng.uniform(0, 1);
    if (dice < 0.45) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, 2));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (a == b) b = (b + 1) % 3;
      static const DataRate kRates[] = {rates::k1G, rates::k10G};
      static const core::ProtectionMode kProt[] = {core::ProtectionMode::kUnprotected,
                                             core::ProtectionMode::kRestorable};
      s.portal->connect(sites[a], sites[b], kRates[rng.uniform_int(0, 1)],
                        kProt[rng.uniform_int(0, 1)],
                        [&live](Result<ConnectionId> r) {
                          if (r.ok()) live.push_back(r.value());
                        });
    } else if (dice < 0.6 && !live.empty()) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      const ConnectionId id = live[at];
      s.portal->disconnect(id, [&live, id](Status st) {
        if (st.ok()) std::erase(live, id);
      });
    }
    s.engine.run_until(s.engine.now() + from_seconds(rng.uniform(60, 400)));
    sampler.sample_now();
  }

  // Stand the faults down, let every restart / transfer window / retry
  // play out, then drain the plant.
  injector.disarm();
  injector.heal_all();
  s.engine.run();
  for (int attempt = 0; attempt < 6 && !live.empty(); ++attempt) {
    auto remaining = live;
    for (const ConnectionId id : remaining) {
      s.portal->disconnect(id, [&live, id](Status st) {
        if (st.ok() || st.error().code() == ErrorCode::kNotFound)
          std::erase(live, id);
      });
    }
    s.engine.run();
  }
  EXPECT_TRUE(live.empty()) << plan.name << ": undrained connections";
  s.controller->decommission_idle_carriers([](Status) {});
  s.engine.run();

  // Post-chaos audit: sweep whatever the faults leaked until clean.
  for (int i = 0; i < 4; ++i) {
    std::optional<ResyncReport> report;
    s.controller->resync([&](Result<ResyncReport> r) {
      if (r.ok()) report = r.value();
    });
    s.engine.run();
    if (report.has_value() && report->total_leaks() == 0 &&
        report->drifted_connections == 0)
      break;
  }

  // --- invariants: an explicit fate for every transfer ------------------
  for (const TransferId id : transfers) {
    const auto status = sched.inspect(s.csp, id);
    EXPECT_TRUE(status.ok());
    if (!status.ok()) continue;
    const auto state = status.value().state;
    EXPECT_TRUE(state == bod::TransferScheduler::TransferState::kCompleted ||
                state == bod::TransferScheduler::TransferState::kFailed ||
                state == bod::TransferScheduler::TransferState::kCancelled)
        << plan.name << ": transfer " << id.value()
        << " has no terminal state";
  }

  // --- invariants: nothing leaked anywhere in the plant -----------------
  for (const auto& node : s.model->graph().nodes()) {
    EXPECT_EQ(s.model->roadm_at(node.id).active_uses(), 0u)
        << plan.name << ": ROADM at " << node.name << " still configured";
    EXPECT_EQ(s.model->fxc_at(node.id).active_connections(), 0u)
        << plan.name << ": FXC at " << node.name << " still cross-connected";
  }
  for (const auto& ot : s.model->ots())
    EXPECT_NE(ot->state(), dwdm::Transponder::State::kActive)
        << plan.name << ": " << ot->name() << " still active";
  for (const auto& regen : s.model->regens())
    EXPECT_FALSE(regen->in_use())
        << plan.name << ": " << regen->name() << " still engaged";
  const auto slots = s.model->otn().slot_stats();
  EXPECT_EQ(slots.working, 0) << plan.name;
  EXPECT_EQ(s.model->otn().circuit_count(), 0u) << plan.name;
  for (const auto& site : s.model->customer_sites())
    EXPECT_EQ(s.model->nte(site.nte).ports_in_use(), 0u) << plan.name;
  EXPECT_EQ(s.controller->active_connections(), 0u) << plan.name;
  EXPECT_EQ(s.controller->inventory().reservations(), 0u) << plan.name;
  EXPECT_EQ(cal.active_reservations(), 0u) << plan.name;
  EXPECT_EQ(adm.committed(s.csp), DataRate{}) << plan.name;
  EXPECT_EQ(s.portal->provisioned(), DataRate{}) << plan.name;
  EXPECT_TRUE(tel.metrics().invalid_names().empty()) << plan.name;

  // The plan actually did something.
  const auto& is = injector.stats();
  const std::uint64_t total_faults =
      is.nacks_injected + is.slow_commands + is.ems_crashes +
      is.frames_dropped + is.frames_duplicated + is.frames_delayed +
      is.ot_faults + is.fxc_sticks + is.fiber_cuts;
  EXPECT_GT(total_faults, 0u) << plan.name << ": injector never fired";

  // --- determinism digest ----------------------------------------------
  std::ostringstream d;
  d << "now=" << to_seconds(s.engine.now());
  d << " inj=" << is.nacks_injected << "/" << is.slow_commands << "/"
    << is.ems_crashes << "/" << is.frames_dropped << "/"
    << is.frames_duplicated << "/" << is.frames_delayed << "/"
    << is.ot_faults << "/" << is.fxc_sticks << "/" << is.fiber_cuts << "/"
    << is.links_cut << "/" << injector.log().size();
  const auto& cs = s.controller->stats();
  d << " ctl=" << cs.setups_ok << "/" << cs.setups_failed << "/"
    << cs.releases << "/" << cs.commands_issued << "/" << cs.commands_retried
    << "/" << cs.commands_shed << "/" << cs.resync_runs << "/"
    << cs.resync_leaks << "/" << cs.resync_drift;
  const auto& hb = s.controller->ems_health().stats();
  d << " brk=" << hb.opens << "/" << hb.closes << "/" << hb.fast_failures;
  const auto& ss = sched.stats();
  d << " bod=" << ss.submitted << "/" << ss.accepted << "/" << ss.completed
    << "/" << ss.failed << "/" << ss.deadline_met << "/"
    << ss.deadline_missed << "/" << ss.setup_retries << "/"
    << ss.setups_deferred << "/" << ss.reschedules;
  for (const TransferId id : transfers) {
    const auto status = sched.inspect(s.csp, id);
    d << " t" << id.value() << "="
      << (status.ok() ? static_cast<int>(status.value().state) : -1);
  }
  // The chaos-soak CI lane validates these with tools/validate_trace.py
  // and uploads them; only the heaviest plan exports, to keep test output
  // lean. Both same-seed runs write the same bytes (determinism).
  if (plan.name == "combined") {
    if (std::ofstream f("trace_soak_combined.json"); f)
      f << telemetry::TraceExporter().to_json(tel) << "\n";
    if (std::ofstream f("SERIES_soak_combined.json"); f)
      f << sampler.rollups_json();
  }

  s.model->attach_telemetry(nullptr);
  out.digest = d.str();
  out.ran = true;
  return out;
}

class ChaosSoak : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosSoak, InvariantsHoldAndRunsAreDeterministic) {
  const auto plan = FaultPlan::preset(GetParam());
  ASSERT_TRUE(plan.ok());
  const SoakOutcome first = run_chaos_soak(1234, plan.value());
  ASSERT_TRUE(first.ran);
  if (::testing::Test::HasFailure()) return;  // invariant diagnosis first
  const SoakOutcome second = run_chaos_soak(1234, plan.value());
  EXPECT_EQ(first.digest, second.digest)
      << GetParam() << ": same (plan, seed) diverged";
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosSoak,
                         ::testing::Values("ems-flaps", "channel-loss",
                                           "device-faults", "combined",
                                           "conduit-cut", "failure-storm"));

// --- bridge-and-roll under faults -------------------------------------------

ConnectionId roll_chaos_connect(core::TestbedScenario& s) {
  std::optional<Result<ConnectionId>> res;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { res = std::move(r); });
  s.engine.run();
  EXPECT_TRUE(res.has_value() && res->ok());
  return res->value();
}

void roll_chaos_disconnect(core::TestbedScenario& s, ConnectionId id) {
  std::optional<Status> done;
  s.portal->disconnect(id, [&](Status st) { done = st; });
  s.engine.run();
  EXPECT_TRUE(done && done->ok());
}

/// Sweep leaked residue (a failed roll may strand tuned optics for resync
/// to reclaim) and require the plant to audit clean within a few passes.
void expect_plant_sweeps_clean(core::TestbedScenario& s) {
  std::optional<ResyncReport> report;
  for (int pass = 0; pass < 4; ++pass) {
    report = run_resync(s);
    ASSERT_TRUE(report.has_value());
    if (report->total_leaks() == 0 && report->drifted_connections == 0)
      break;
  }
  EXPECT_EQ(report->total_leaks(), 0u);
  EXPECT_EQ(report->drifted_connections, 0u);
}

TEST(RollChaos, RollRacesFiberCutOnOldPath) {
  core::TestbedScenario s(21);
  const ConnectionId id = roll_chaos_connect(s);
  const LinkId old_link = s.controller->connection(id).plan.path.links.front();

  // Bridge-and-roll onto a disjoint path, with the in-service span cut
  // out from under the roll shortly after it starts. Whichever way the
  // race lands — roll completes onto the bridge, or it unwinds and
  // restoration takes over — the service must end on exactly one healthy
  // path off the cut span.
  std::optional<Status> rolled;
  s.controller->bridge_and_roll(id, {}, [&](Status st) { rolled = st; });
  s.engine.schedule(milliseconds(200),
                    [&] { s.model->fail_link(old_link); });
  s.engine.run();
  ASSERT_TRUE(rolled.has_value());

  const auto& c = s.controller->connection(id);
  EXPECT_TRUE(c.is_up()) << "state=" << static_cast<int>(c.state);
  EXPECT_FALSE(c.plan.path.uses_link(old_link));
  for (const LinkId l : c.plan.path.links)
    EXPECT_FALSE(s.model->link_failed(l));

  s.model->repair_link(old_link);
  s.engine.run();
  expect_plant_sweeps_clean(s);
  roll_chaos_disconnect(s, id);
}

/// Rejects the first `budget` commands with a retryable kBusy NACK, then
/// behaves. Models a management plane briefly saturated by other work.
struct BusyFirstN final : ems::EmsFaultHook {
  explicit BusyFirstN(int budget) : remaining(budget) {}
  Status on_command(const std::string&, const proto::Message&) override {
    if (remaining <= 0) return Status::success();
    --remaining;
    return Status{ErrorCode::kBusy, "injected: EMS busy"};
  }
  double latency_scale(const std::string&) override { return 1.0; }
  int remaining;
};

TEST(RollChaos, RollRetriesThroughEmsBusyNacksMidBridge) {
  core::TestbedScenario s(22);
  const ConnectionId a = roll_chaos_connect(s);
  const ConnectionId b = roll_chaos_connect(s);
  roll_chaos_disconnect(s, a);  // hole at channel 0, b sits above it

  BusyFirstN hook(2);  // stay under max_attempts: every command recovers
  s.model->roadm_ems().set_fault_hook(&hook);

  reopt::ReoptService service(s.controller.get(), {});
  std::optional<reopt::MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const reopt::MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  s.model->roadm_ems().set_fault_hook(nullptr);

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->aborted);
  EXPECT_EQ(report->moves_rolled, 1u);
  EXPECT_EQ(report->rolls_failed, 0u);
  EXPECT_EQ(hook.remaining, 0);  // the NACKs really were injected
  EXPECT_GE(s.controller->stats().commands_retried, 2u);
  const auto& c = s.controller->connection(b);
  EXPECT_EQ(c.state, core::ConnectionState::kActive);
  EXPECT_EQ(c.plan.segments[0].channel, 0);
  EXPECT_EQ(c.restorations, 0);
  EXPECT_EQ(c.total_outage, SimTime{});
  expect_plant_sweeps_clean(s);
}

TEST(RollChaos, CampaignAbortsWhenEmsBreakerOpens) {
  core::TestbedScenario s(23);
  const ConnectionId a = roll_chaos_connect(s);
  const ConnectionId b = roll_chaos_connect(s);
  const ConnectionId c = roll_chaos_connect(s);
  roll_chaos_disconnect(s, a);  // two compaction moves: b -> 0, c -> 1

  // The ROADM EMS dies before the campaign starts. The first roll's
  // commands time out; by the time its retries are exhausted the
  // consecutive-timeout breaker is open, and the next pump aborts the
  // campaign instead of feeding moves to a dead management plane.
  s.model->roadm_ems().crash_restart(minutes(30));
  reopt::ReoptService service(s.controller.get(), {});
  std::optional<reopt::MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const reopt::MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->aborted);
  EXPECT_NE(report->abort_reason.find("breaker"), std::string::npos);
  EXPECT_EQ(report->moves_rolled, 0u);
  EXPECT_GE(report->moves_failed + report->moves_skipped, 2u);
  EXPECT_GE(s.controller->stats().rolls_failed, 1u);

  // The failed roll unwound: both services still ride their original
  // channels, undisturbed.
  for (const auto& [id, ch] : {std::pair{b, 1}, std::pair{c, 2}}) {
    EXPECT_TRUE(s.controller->connection(id).is_up());
    EXPECT_EQ(s.controller->connection(id).plan.segments[0].channel, ch);
    EXPECT_EQ(s.controller->connection(id).restorations, 0);
  }

  // EMS restarts, announces itself, reconciliation sweeps the residue.
  s.engine.run();
  expect_plant_sweeps_clean(s);
}

}  // namespace
}  // namespace griphon::chaos
