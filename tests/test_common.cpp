// Unit tests for the common substrate: ids, units, Result, RNG, latency
// models.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace griphon {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_FALSE(static_cast<bool>(id));
}

TEST(Ids, ExplicitValueIsValid) {
  NodeId id{3};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3u);
}

TEST(Ids, ComparesByValue) {
  EXPECT_EQ(NodeId{1}, NodeId{1});
  EXPECT_NE(NodeId{1}, NodeId{2});
  EXPECT_LT(NodeId{1}, NodeId{2});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<ConnectionId, CustomerId>);
}

TEST(Ids, AllocatorIsMonotonic) {
  IdAllocator<ConnectionId> alloc;
  const auto a = alloc.next();
  const auto b = alloc.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(alloc.issued(), 2u);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<LinkId> set;
  set.insert(LinkId{1});
  set.insert(LinkId{1});
  set.insert(LinkId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Units, DataRateArithmetic) {
  const DataRate a = DataRate::gbps(10);
  const DataRate b = DataRate::gbps(2.5);
  EXPECT_EQ((a + b).in_gbps(), 12.5);
  EXPECT_EQ((a - b).in_gbps(), 7.5);
  EXPECT_EQ((b * 4).in_gbps(), 10.0);
  EXPECT_LT(b, a);
}

TEST(Units, RatesMatchStandards) {
  EXPECT_NEAR(rates::kOdu0.in_gbps(), 1.244, 0.001);
  EXPECT_NEAR(rates::kOdu2.in_gbps(), 10.037, 0.001);
  EXPECT_NEAR(rates::kSts1.in_gbps(), 0.0518, 0.0001);
  EXPECT_NEAR(rates::kOc12.in_gbps(), 0.622, 0.001);
}

TEST(Units, TransferTime) {
  // 1 GB over 1 Gbps = 8 seconds.
  const SimTime t = transfer_time(1'000'000'000, DataRate::gbps(1));
  EXPECT_NEAR(to_seconds(t), 8.0, 1e-6);
}

TEST(Units, TransferTimeZeroRateIsInfinite) {
  EXPECT_EQ(transfer_time(100, DataRate{}), SimTime::max());
}

TEST(Units, SimTimeConversions) {
  EXPECT_EQ(to_seconds(seconds(90)), 90.0);
  EXPECT_EQ(to_milliseconds(seconds(2)), 2000.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
  EXPECT_EQ(minutes(2), seconds(120));
  EXPECT_EQ(hours(1), minutes(60));
}

TEST(Units, DistanceAccumulates) {
  Distance d = Distance::km(100);
  d += Distance::km(50);
  EXPECT_EQ(d.in_km(), 150.0);
  EXPECT_LT(Distance::km(10), Distance::km(20));
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Error{ErrorCode::kNotFound, "gone"}};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r{Error{ErrorCode::kBusy, "nope"}};
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, StatusDefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e{ErrorCode::kTimeout, "late"};
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code(), ErrorCode::kTimeout);
}

TEST(Result, ErrorCodeNames) {
  EXPECT_EQ(to_string(ErrorCode::kNone), "ok");
  EXPECT_EQ(to_string(ErrorCode::kResourceExhausted), "resource-exhausted");
  EXPECT_EQ(to_string(ErrorCode::kUnreachable), "unreachable");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalTruncatedAtZero) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(rng.normal(0.1, 5.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, LognormalMeanIsCalibrated) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.lognormal(2.0, 0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkIndependence) {
  Rng a(77);
  Rng child = a.fork();
  (void)child.uniform(0, 1);
  // Parent stays deterministic regardless of how much the child draws.
  Rng b(77);
  Rng child2 = b.fork();
  for (int i = 0; i < 5; ++i) (void)child2.uniform(0, 1);
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(LatencyModel, FixedIsExact) {
  Rng rng(1);
  const auto m = LatencyModel::fixed(milliseconds(250));
  EXPECT_EQ(m.sample(rng), milliseconds(250));
  EXPECT_EQ(m.mean(), milliseconds(250));
}

TEST(LatencyModel, NormalRespectsFloor) {
  Rng rng(1);
  const auto m =
      LatencyModel::normal(milliseconds(100), milliseconds(50),
                           milliseconds(200));
  for (int i = 0; i < 500; ++i)
    EXPECT_GE(m.sample(rng), milliseconds(100));
}

TEST(LatencyModel, MeanAccountsForFloor) {
  const auto m = LatencyModel::normal(seconds(1), seconds(2), milliseconds(1));
  EXPECT_EQ(m.mean(), seconds(3));
}

TEST(LatencyModel, ExponentialSamplesVary) {
  Rng rng(2);
  const auto m = LatencyModel::exponential(SimTime{}, seconds(1));
  std::set<SimTime> seen;
  for (int i = 0; i < 20; ++i) seen.insert(m.sample(rng));
  EXPECT_GT(seen.size(), 10u);
}

class LatencyMeanSweep
    : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LatencyMeanSweep, EmpiricalMeanTracksConfiguredMean) {
  const auto mean_ms = GetParam();
  Rng rng(42);
  const auto m = LatencyModel::normal(SimTime{}, milliseconds(mean_ms),
                                      milliseconds(mean_ms / 10));
  double sum = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) sum += to_milliseconds(m.sample(rng));
  EXPECT_NEAR(sum / kN, static_cast<double>(mean_ms),
              static_cast<double>(mean_ms) * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, LatencyMeanSweep,
                         ::testing::Values(100, 800, 1600, 9000, 12000));

}  // namespace
}  // namespace griphon
