// Integration tests for the GRIPhoN controller on the paper's testbed:
// end-to-end setup/teardown over the real EMS/protocol stack, failure
// localization and restoration at both layers, 1+1 protection,
// bridge-and-roll, maintenance, re-grooming, and the customer portal.
#include <gtest/gtest.h>

#include <optional>
#include <variant>

#include "core/scenario.hpp"
#include "ems/ems_server.hpp"
#include "proto/messages.hpp"

namespace griphon::core {
namespace {

/// Runs the engine and returns the ConnectionId (or fails the test).
ConnectionId connect_sync(TestbedScenario& s, MuxponderId a, MuxponderId b,
                          DataRate rate, ProtectionMode prot) {
  std::optional<Result<ConnectionId>> result;
  s.portal->connect(a, b, rate, prot,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  EXPECT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << (result->ok() ? "" : result->error().message());
  return result->value();
}

/// Params reproducing the 2011 testbed's one-dialogue-at-a-time behaviour
/// (the paper's measured 60-70 s setups). The controller now defaults to
/// the DAG executor; paper-band timing tests pin sequential explicitly.
GriphonController::Params sequential_params() {
  GriphonController::Params p;
  p.exec_mode = ExecMode::kSequential;
  return p;
}

TEST(ControllerSetup, WavelengthEndToEnd) {
  TestbedScenario s(42, NetworkModel::Config{}, sequential_params());
  const auto id =
      connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                   ProtectionMode::kRestorable);
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_EQ(c.kind, ConnectionKind::kWavelength);
  EXPECT_EQ(c.plan.path.hops(), 1u);
  // Measured setup time in the paper's band ("60 to 70 seconds").
  EXPECT_GT(to_seconds(c.setup_duration), 55.0);
  EXPECT_LT(to_seconds(c.setup_duration), 75.0);
  // Devices actually configured: both OTs active on the same channel.
  EXPECT_EQ(s.model->ot(c.plan.src_ot).state(),
            dwdm::Transponder::State::kActive);
  EXPECT_EQ(s.model->ot(c.plan.dst_ot).channel(),
            c.plan.segments.front().channel);
  // ROADMs hold the channel on the facing degrees.
  const auto d = s.model->roadm_at(s.topo.i).degree_for(s.topo.i_iv).value();
  EXPECT_TRUE(
      s.model->roadm_at(s.topo.i).channel_in_use(d,
                                                 c.plan.segments[0].channel));
  // FXC patched customer access to the OT at both PoPs.
  EXPECT_EQ(s.model->fxc_at(s.topo.i).active_connections(), 1u);
  EXPECT_EQ(s.model->fxc_at(s.topo.iv).active_connections(), 1u);
  // NTE port claimed at both premises.
  EXPECT_EQ(s.model->nte(s.site_i).ports_in_use(), 1u);
}

TEST(ControllerSetup, TeardownFreesEverything) {
  TestbedScenario s(43, NetworkModel::Config{}, sequential_params());
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  const auto plan = s.controller->connection(id).plan;
  SimTime start = s.engine.now();
  std::optional<Status> done;
  s.portal->disconnect(id, [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done && done->ok());
  // Teardown takes ~10 s (paper: "Tearing down ... takes around 10 s").
  EXPECT_GT(to_seconds(s.engine.now() - start), 6.0);
  EXPECT_LT(to_seconds(s.engine.now() - start), 16.0);
  EXPECT_EQ(s.controller->connection(id).state, ConnectionState::kReleased);
  // Every resource is back.
  EXPECT_EQ(s.model->roadm_at(s.topo.i).active_uses(), 0u);
  EXPECT_EQ(s.model->fxc_at(s.topo.i).active_connections(), 0u);
  EXPECT_EQ(s.model->nte(s.site_i).ports_in_use(), 0u);
  EXPECT_NE(s.model->ot(plan.src_ot).state(),
            dwdm::Transponder::State::kActive);
}

TEST(ControllerSetup, SubWavelengthRidesOtnLayer) {
  TestbedScenario s(44);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k1G,
                               ProtectionMode::kRestorable);
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.kind, ConnectionKind::kSubWavelength);
  EXPECT_TRUE(c.odu.valid());
  const auto& circuit = s.model->otn().circuit(c.odu);
  EXPECT_EQ(circuit.slots, 1);
  EXPECT_TRUE(circuit.is_protected);
  // Sub-wavelength setup is much faster than a wavelength (electronic).
  EXPECT_LT(to_seconds(c.setup_duration), 20.0);
  // No wavelength-layer resources consumed.
  EXPECT_EQ(s.model->roadm_at(s.topo.i).active_uses(), 0u);
}

TEST(ControllerSetup, SubWavelengthTeardown) {
  TestbedScenario s(45);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k1G,
                               ProtectionMode::kRestorable);
  std::optional<Status> done;
  s.portal->disconnect(id, [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done && done->ok());
  EXPECT_EQ(s.model->otn().circuit_count(), 0u);
  EXPECT_EQ(s.model->otn().slot_stats().working, 0);
  EXPECT_EQ(s.model->fxc_at(s.topo.i).active_connections(), 0u);
}

TEST(ControllerSetup, RateSelectsLayer) {
  TestbedScenario s(46);
  const auto wave = connect_sync(s, s.site_i, s.site_iii, rates::k10G,
                                 ProtectionMode::kRestorable);
  const auto odu = connect_sync(s, s.site_i, s.site_iii, DataRate::gbps(2.5),
                                ProtectionMode::kRestorable);
  EXPECT_EQ(s.controller->connection(wave).kind,
            ConnectionKind::kWavelength);
  EXPECT_EQ(s.controller->connection(odu).kind,
            ConnectionKind::kSubWavelength);
}

TEST(ControllerSetup, ConcurrentRequestsDoNotCollide) {
  TestbedScenario s(47);
  std::vector<ConnectionId> ids;
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok())
                          ids.push_back(r.value());
                        else
                          ++failures;
                      });
  }
  s.engine.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(failures, 0);
  // All three use distinct channels on the shared link and distinct OTs.
  std::set<dwdm::ChannelIndex> channels;
  std::set<TransponderId> ots;
  for (const auto id : ids) {
    const auto& c = s.controller->connection(id);
    channels.insert(c.plan.segments[0].channel);
    ots.insert(c.plan.src_ot);
    ots.insert(c.plan.dst_ot);
  }
  EXPECT_EQ(channels.size(), 3u);
  EXPECT_EQ(ots.size(), 6u);
}

TEST(ControllerSetup, NtePortExhaustionRejected) {
  TestbedScenario s(48);
  // The NTE has 4 client ports; the 5th concurrent connection must fail
  // with a clean error.
  int ok = 0, rejected = 0;
  for (int i = 0; i < 5; ++i) {
    s.portal->connect(s.site_i, s.site_iv, rates::k1G,
                      ProtectionMode::kUnprotected,
                      [&](Result<ConnectionId> r) {
                        r.ok() ? ++ok : ++rejected;
                      });
  }
  s.engine.run();
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(rejected, 1);
}

TEST(ControllerSetup, CrossCustomerSiteRejected) {
  TestbedScenario s(49);
  // A site handle belonging to another customer must be refused.
  auto& foreign =
      s.model->add_customer_site(CustomerId{2}, "DC-EVIL", s.topo.ii);
  std::optional<Error> err;
  ConnectionRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = foreign.nte;
  req.rate = rates::k10G;
  s.controller->request_connection(
      req, [&](Result<ConnectionId> r) { err = r.error(); });
  s.engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ErrorCode::kPermissionDenied);
}

TEST(ControllerFailure, WavelengthRestorationReroutes) {
  TestbedScenario s(50);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  ASSERT_EQ(s.controller->connection(id).plan.path.hops(), 1u);
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_EQ(c.restorations, 1);
  EXPECT_FALSE(c.plan.path.uses_link(s.topo.i_iv));
  // Restoration outage: minutes-scale (localize + re-provision), i.e. far
  // more than 1+1 but far less than 4-12 h manual repair.
  EXPECT_GT(to_seconds(c.total_outage), 30.0);
  EXPECT_LT(to_seconds(c.total_outage), 200.0);
  EXPECT_EQ(s.controller->stats().restorations_ok, 1u);
}

TEST(ControllerFailure, UnprotectedStaysDownUntilRepair) {
  TestbedScenario s(51);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kUnprotected);
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(id).state, ConnectionState::kFailed);
  // Hours later the cable is spliced; light and service return.
  s.engine.run_until(s.engine.now() + hours(6));
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_GT(to_seconds(c.total_outage), 6 * 3600.0 - 60);
}

TEST(ControllerFailure, OnePlusOneSwitchesInMilliseconds) {
  TestbedScenario s(52);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kOnePlusOne);
  const auto& c0 = s.controller->connection(id);
  ASSERT_TRUE(c0.standby.has_value());
  // Legs are link-disjoint.
  for (const LinkId l : c0.standby->path.links)
    EXPECT_FALSE(c0.plan.path.uses_link(l));

  s.model->fail_link(s.topo.i_iv);  // primary leg
  s.engine.run();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_TRUE(c.traffic_on_standby);
  EXPECT_LT(to_seconds(c.total_outage), 0.2);  // tail-end switch
  EXPECT_EQ(c.restorations, 1);
}

TEST(ControllerFailure, OnePlusOneBothLegsDownThenRepair) {
  TestbedScenario s(53);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kOnePlusOne);
  const auto standby_links = s.controller->connection(id).standby->path.links;
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  for (const LinkId l : standby_links) s.model->fail_link(l);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(id).state, ConnectionState::kFailed);
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(id).state, ConnectionState::kActive);
}

TEST(ControllerFailure, OtnMeshRestorationSubSecond) {
  TestbedScenario s(54);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k1G,
                               ProtectionMode::kRestorable);
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_EQ(c.restorations, 1);
  EXPECT_LT(to_seconds(c.total_outage), 1.0);  // shared-mesh, sub-second
  EXPECT_EQ(s.model->otn().circuit(c.odu).state,
            otn::OduCircuit::State::kOnBackup);
}

TEST(ControllerFailure, OtnRevertsAfterRepair) {
  TestbedScenario s(55);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k1G,
                               ProtectionMode::kRestorable);
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(s.model->otn().circuit(c.odu).state,
            otn::OduCircuit::State::kActive);  // revertive
}

TEST(ControllerFailure, AlarmCorrelationLocalizesOneCut) {
  TestbedScenario s(56);
  (void)connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                     ProtectionMode::kUnprotected);
  (void)connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                     ProtectionMode::kUnprotected);
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  // Two connections x two end ROADMs raised >= 4 raw alarms, but the
  // failure manager localizes exactly one root cause.
  EXPECT_GE(s.controller->failure_manager().alarms_ingested(), 4u);
  EXPECT_EQ(s.controller->failure_manager().believed_failed().size(), 1u);
  EXPECT_TRUE(
      s.controller->failure_manager().believed_failed().contains(s.topo.i_iv));
}

TEST(ControllerRoll, BridgeAndRollMovesTraffic) {
  TestbedScenario s(57);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  const auto old_plan = s.controller->connection(id).plan;
  std::optional<Status> done;
  Exclusions avoid;
  avoid.links.insert(s.topo.i_iv);
  s.controller->bridge_and_roll(id, avoid, [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done && done->ok()) << done->error().message();
  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_EQ(c.rolls, 1);
  EXPECT_FALSE(c.plan.path.uses_link(s.topo.i_iv));
  // Resource-disjoint from the old path (paper constraint).
  for (const LinkId l : c.plan.path.links)
    EXPECT_FALSE(old_plan.path.uses_link(l));
  // Old path resources released; connection never went down.
  EXPECT_EQ(to_seconds(c.total_outage), 0.0);
  const auto d = s.model->roadm_at(s.topo.i).degree_for(s.topo.i_iv).value();
  EXPECT_FALSE(s.model->roadm_at(s.topo.i).channel_in_use(
      d, old_plan.segments[0].channel));
}

TEST(ControllerRoll, PrepareMaintenanceClearsSpan) {
  TestbedScenario s(58);
  const auto a = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                              ProtectionMode::kRestorable);
  const auto b = connect_sync(s, s.site_i, s.site_iii, rates::k10G,
                              ProtectionMode::kRestorable);
  std::optional<Status> done;
  s.controller->prepare_maintenance(s.topo.i_iv, [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done && done->ok());
  EXPECT_FALSE(s.controller->connection(a).plan.path.uses_link(s.topo.i_iv));
  EXPECT_EQ(s.controller->connection(b).rolls, 0);  // untouched
  // The span can now fail without any service impact.
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(a).state, ConnectionState::kActive);
  EXPECT_EQ(to_seconds(s.controller->connection(a).total_outage), 0.0);
}

TEST(ControllerRoll, RegroomReturnsToShortPath) {
  TestbedScenario s(59);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  // Push it off the direct span, then re-groom home.
  Exclusions avoid;
  avoid.links.insert(s.topo.i_iv);
  std::optional<Status> rolled;
  s.controller->bridge_and_roll(id, avoid, [&](Status st) { rolled = st; });
  s.engine.run();
  ASSERT_TRUE(rolled && rolled->ok());
  ASSERT_EQ(s.controller->connection(id).plan.path.hops(), 2u);
  std::optional<Status> regroomed;
  s.controller->regroom(id, [&](Status st) { regroomed = st; });
  s.engine.run();
  ASSERT_TRUE(regroomed && regroomed->ok());
  EXPECT_EQ(s.controller->connection(id).plan.path.hops(), 1u);
  EXPECT_EQ(s.controller->connection(id).rolls, 2);
}

TEST(ControllerRoll, RegroomNoopWhenAlreadyOptimal) {
  TestbedScenario s(60);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  std::optional<Status> done;
  s.controller->regroom(id, [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done && done->ok());
  EXPECT_EQ(s.controller->connection(id).rolls, 0);
}

TEST(Portal, QuotaEnforced) {
  TestbedScenario s(61);
  CustomerPortal small(s.controller.get(), s.csp, DataRate::gbps(15));
  std::optional<Result<ConnectionId>> first, second;
  small.connect(s.site_i, s.site_iv, rates::k10G,
                ProtectionMode::kRestorable,
                [&](Result<ConnectionId> r) { first = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(first && first->ok());
  small.connect(s.site_i, s.site_iv, rates::k10G,
                ProtectionMode::kRestorable,
                [&](Result<ConnectionId> r) { second = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(second.has_value());
  ASSERT_FALSE(second->ok());
  EXPECT_EQ(second->error().code(), ErrorCode::kPermissionDenied);
}

TEST(Portal, DecompositionMatchesPaperExample) {
  // "2 x 1G OTN circuits and one 10G DWDM to achieve ... 12G instead of
  // consuming a second 10G DWDM."
  const auto d = CustomerPortal::decompose(DataRate::gbps(12));
  EXPECT_EQ(d.wavelengths_10g, 1);
  EXPECT_EQ(d.odu_1g, 2);
  // Pure wavelength rates decompose to waves only.
  const auto w = CustomerPortal::decompose(DataRate::gbps(40));
  EXPECT_EQ(w.wavelengths_10g, 4);
  EXPECT_EQ(w.odu_1g, 0);
  // Large remainders promote to a wave.
  const auto p = CustomerPortal::decompose(DataRate::gbps(19));
  EXPECT_EQ(p.wavelengths_10g, 2);
  EXPECT_EQ(p.odu_1g, 0);
  // Small demands are pure OTN: up to 2G as 1G circuits, above that one
  // ODUflex circuit (a single access port).
  const auto two = CustomerPortal::decompose(DataRate::gbps(2));
  EXPECT_EQ(two.odu_1g, 2);
  EXPECT_TRUE(two.odu_flex.zero());
  const auto o = CustomerPortal::decompose(DataRate::gbps(3));
  EXPECT_EQ(o.wavelengths_10g, 0);
  EXPECT_EQ(o.odu_1g, 0);
  EXPECT_EQ(o.odu_flex, DataRate::gbps(3));
}

TEST(Portal, BundleSetupAndRelease) {
  TestbedScenario s(62);
  std::optional<Result<BundleId>> result;
  s.portal->connect_bundle(s.site_i, s.site_iv, DataRate::gbps(12),
                           ProtectionMode::kRestorable,
                           [&](Result<BundleId> r) { result = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(result && result->ok());
  const auto& bundle = s.portal->bundle(result->value());
  EXPECT_EQ(bundle.parts.size(), 3u);  // 1 wave + 2 ODU
  int waves = 0, odus = 0;
  for (const auto part : bundle.parts) {
    const auto& c = s.controller->connection(part);
    c.kind == ConnectionKind::kWavelength ? ++waves : ++odus;
  }
  EXPECT_EQ(waves, 1);
  EXPECT_EQ(odus, 2);
  EXPECT_EQ(s.portal->provisioned(), DataRate::gbps(12));

  std::optional<Status> released;
  s.portal->disconnect_bundle(result->value(),
                              [&](Status st) { released = st; });
  s.engine.run();
  ASSERT_TRUE(released && released->ok());
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
  EXPECT_EQ(s.model->otn().circuit_count(), 0u);
}

TEST(Portal, ListShowsCustomerView) {
  TestbedScenario s(63);
  (void)connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                     ProtectionMode::kRestorable);
  (void)connect_sync(s, s.site_i, s.site_iii, rates::k1G,
                     ProtectionMode::kRestorable);
  const auto views = s.portal->list();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].src_site, "DC-I");
  EXPECT_EQ(views[0].state, "active");
  EXPECT_EQ(views[0].service, "wavelength");
  EXPECT_EQ(views[1].service, "sub-wavelength");
}

TEST(Controller, ExecModesOrderedByConcurrency) {
  GriphonController::Params pipelined;
  pipelined.exec_mode = ExecMode::kPipelined;
  TestbedScenario seq(64, NetworkModel::Config{}, sequential_params());
  TestbedScenario dag(64);  // default params: DAG executor
  TestbedScenario par(64, NetworkModel::Config{}, pipelined);
  const auto a = connect_sync(seq, seq.site_i, seq.site_iv, rates::k10G,
                              ProtectionMode::kRestorable);
  const auto d = connect_sync(dag, dag.site_i, dag.site_iv, rates::k10G,
                              ProtectionMode::kRestorable);
  const auto b = connect_sync(par, par.site_i, par.site_iv, rates::k10G,
                              ProtectionMode::kRestorable);
  const double t_seq = to_seconds(seq.controller->connection(a).setup_duration);
  const double t_dag = to_seconds(dag.controller->connection(d).setup_duration);
  const double t_par = to_seconds(par.controller->connection(b).setup_duration);
  // The DAG executor overlaps everything the dependency edges allow and
  // must land well under the sequential train; the ordering-blind
  // pipelined ablation is the (unsafe) lower bound it cannot beat.
  EXPECT_LT(t_dag, t_seq * 0.7);
  EXPECT_LE(t_par, t_dag);
  // Same final device state no matter the executor.
  EXPECT_EQ(seq.controller->device_state_digest(),
            dag.controller->device_state_digest());
}

/// Chaos hook for the rollback-ordering regression below: vetoes the first
/// OT activation (non-retryable NACK) to force a mid-setup rollback, then
/// slows the FXC EMS so an out-of-order undo train is caught — if the NTE
/// disable does not wait for its FXC disconnect, the two dialogues start
/// back to back instead of serialized.
struct RollbackOrderProbe final : ems::EmsFaultHook {
  explicit RollbackOrderProbe(sim::Engine* e) : engine(e) {}
  sim::Engine* engine;
  bool armed = true;
  double fxc_scale = 1.0;
  std::optional<SimTime> fxc_disconnect_at;
  std::optional<SimTime> nte_disable_at;

  Status on_command(const std::string&, const proto::Message& m) override {
    if (armed && std::holds_alternative<proto::OtSetState>(m) &&
        std::get<proto::OtSetState>(m).action ==
            proto::OtSetState::Action::kActivate) {
      armed = false;
      fxc_scale = 3.0;  // the rollback now runs against a slow FXC EMS
      return Status{ErrorCode::kDeviceFault, "chaos: activation vetoed"};
    }
    if (std::holds_alternative<proto::FxcDisconnect>(m) && !fxc_disconnect_at)
      fxc_disconnect_at = engine->now();
    if (std::holds_alternative<proto::NtePort>(m) &&
        !std::get<proto::NtePort>(m).engage && !nte_disable_at)
      nte_disable_at = engine->now();
    return Status::success();
  }
  double latency_scale(const std::string& ems) override {
    return ems == "fxc-ems" ? fxc_scale : 1.0;
  }
};

TEST(Controller, RollbackRespectsReverseDependenciesUnderPipelined) {
  // Regression: the ordering-blind pipelined executor used to run the undo
  // train the same way it ran the forward train — every command at once —
  // so an NTE client port could be disabled while its FXC cross-connect
  // was still up. Rollback must always run dependency-ordered (undo edges
  // are the forward edges reversed), whatever the forward executor was.
  GriphonController::Params params;
  params.exec_mode = ExecMode::kPipelined;
  TestbedScenario s(66, NetworkModel::Config{}, params);
  RollbackOrderProbe probe(&s.engine);
  s.model->fxc_ems().set_fault_hook(&probe);
  s.model->roadm_ems().set_fault_hook(&probe);
  s.model->nte_ems().set_fault_hook(&probe);

  std::optional<Result<ConnectionId>> result;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());  // the vetoed activation failed the setup

  // The rollback ran both access undo dialogues, and the NTE disable
  // waited for the (slowed, ~3 s) FXC disconnect to finish. An unordered
  // undo train starts both dialogues at the same instant.
  ASSERT_TRUE(probe.fxc_disconnect_at.has_value());
  ASSERT_TRUE(probe.nte_disable_at.has_value());
  EXPECT_GT(to_seconds(*probe.nte_disable_at - *probe.fxc_disconnect_at),
            2.0);
  // Devices are clean after the rollback.
  EXPECT_EQ(s.model->fxc_at(s.topo.i).active_connections(), 0u);
  EXPECT_EQ(s.model->nte(s.site_i).ports_in_use(), 0u);
  EXPECT_EQ(s.model->roadm_at(s.topo.i).active_uses(), 0u);
}

TEST(Controller, StatsTrackOutcomes) {
  TestbedScenario s(65);
  const auto id = connect_sync(s, s.site_i, s.site_iv, rates::k10G,
                               ProtectionMode::kRestorable);
  std::optional<Status> done;
  s.portal->disconnect(id, [&](Status st) { done = st; });
  s.engine.run();
  const auto& st = s.controller->stats();
  EXPECT_EQ(st.setups_ok, 1u);
  EXPECT_EQ(st.releases, 1u);
  EXPECT_GT(st.commands_issued, 10u);
}

}  // namespace
}  // namespace griphon::core
