// Unit tests for the DWDM photonic layer: wavelength grid, channel sets,
// ROADM configuration rules, transponder/regen lifecycles, muxponder ports
// and the optical reach model.
#include <gtest/gtest.h>

#include "dwdm/muxponder.hpp"
#include "dwdm/reach.hpp"
#include "dwdm/roadm.hpp"
#include "dwdm/transponder.hpp"
#include "dwdm/wavelength.hpp"
#include "topology/builders.hpp"

namespace griphon::dwdm {
namespace {

TEST(WavelengthGrid, FrequenciesFollowItuGrid) {
  WavelengthGrid g(80);
  EXPECT_EQ(g.count(), 80u);
  EXPECT_DOUBLE_EQ(g.frequency_thz(0), 193.1);
  EXPECT_DOUBLE_EQ(g.frequency_thz(10), 193.6);  // 50 GHz spacing
  EXPECT_TRUE(g.contains(79));
  EXPECT_FALSE(g.contains(80));
  EXPECT_FALSE(g.contains(-1));
}

TEST(WavelengthGrid, RejectsBadSizes) {
  EXPECT_THROW(WavelengthGrid(0), std::invalid_argument);
  EXPECT_THROW(WavelengthGrid(500), std::invalid_argument);
}

TEST(ChannelSet, BasicSetOperations) {
  ChannelSet s;
  EXPECT_TRUE(s.empty());
  s.add(3);
  s.add(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.first(), 7);
}

TEST(ChannelSet, AllAndIntersection) {
  ChannelSet a = ChannelSet::all(10);
  EXPECT_EQ(a.size(), 10u);
  ChannelSet b;
  b.add(2);
  b.add(5);
  b.add(12);  // outside a
  const ChannelSet i = a & b;
  EXPECT_EQ(i.size(), 2u);
  EXPECT_TRUE(i.contains(2));
  EXPECT_TRUE(i.contains(5));
}

TEST(ChannelSet, FirstOnEmptyIsNone) {
  ChannelSet s;
  EXPECT_EQ(s.first(), kNoChannel);
}

TEST(ChannelSet, ToVectorSorted) {
  ChannelSet s;
  s.add(9);
  s.add(1);
  s.add(4);
  EXPECT_EQ(s.to_vector(), (std::vector<ChannelIndex>{1, 4, 9}));
}

class RoadmTest : public ::testing::Test {
 protected:
  RoadmTest() : roadm_(RoadmId{1}, NodeId{0}, WavelengthGrid(40)) {
    d0_ = roadm_.attach_degree(LinkId{100});
    d1_ = roadm_.attach_degree(LinkId{101});
    d2_ = roadm_.attach_degree(LinkId{102});
    ports_ = roadm_.add_ports(2);
  }
  Roadm roadm_;
  DegreeIndex d0_, d1_, d2_;
  std::vector<PortId> ports_;
};

TEST_F(RoadmTest, DegreeLookup) {
  EXPECT_EQ(roadm_.degree_count(), 3u);
  EXPECT_EQ(roadm_.degree_for(LinkId{101}), d1_);
  EXPECT_FALSE(roadm_.degree_for(LinkId{999}).has_value());
  EXPECT_EQ(roadm_.link_of(d2_), LinkId{102});
}

TEST_F(RoadmTest, DuplicateDegreeThrows) {
  EXPECT_THROW(roadm_.attach_degree(LinkId{100}), std::invalid_argument);
}

TEST_F(RoadmTest, ExpressConfiguresBothDegrees) {
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  EXPECT_TRUE(roadm_.channel_in_use(d0_, 5));
  EXPECT_TRUE(roadm_.channel_in_use(d1_, 5));
  EXPECT_FALSE(roadm_.channel_in_use(d2_, 5));
  EXPECT_EQ(roadm_.active_uses(), 2u);
}

TEST_F(RoadmTest, ExpressCollisionRejected) {
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  const Status s = roadm_.configure_express(5, d1_, d2_);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kBusy);
  // A different channel through the same degrees is fine.
  EXPECT_TRUE(roadm_.configure_express(6, d1_, d2_).ok());
}

TEST_F(RoadmTest, ExpressValidation) {
  EXPECT_EQ(roadm_.configure_express(99, d0_, d1_).error().code(),
            ErrorCode::kInvalidArgument);  // channel off grid
  EXPECT_EQ(roadm_.configure_express(5, d0_, d0_).error().code(),
            ErrorCode::kInvalidArgument);  // same degree
  EXPECT_EQ(roadm_.configure_express(5, d0_, 9).error().code(),
            ErrorCode::kInvalidArgument);  // no such degree
}

TEST_F(RoadmTest, ReleaseExpressFreesChannel) {
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  ASSERT_TRUE(roadm_.release_express(5, d0_, d1_).ok());
  EXPECT_FALSE(roadm_.channel_in_use(d0_, 5));
  EXPECT_EQ(roadm_.release_express(5, d0_, d1_).error().code(),
            ErrorCode::kConflict);
}

TEST_F(RoadmTest, AddDropLifecycle) {
  ASSERT_TRUE(roadm_.configure_add_drop(ports_[0], d0_, 7).ok());
  EXPECT_TRUE(roadm_.port(ports_[0]).active);
  EXPECT_TRUE(roadm_.channel_in_use(d0_, 7));
  // Port busy.
  EXPECT_EQ(roadm_.configure_add_drop(ports_[0], d1_, 8).error().code(),
            ErrorCode::kBusy);
  // Channel busy on that degree.
  EXPECT_EQ(roadm_.configure_add_drop(ports_[1], d0_, 7).error().code(),
            ErrorCode::kBusy);
  ASSERT_TRUE(roadm_.release_add_drop(ports_[0]).ok());
  EXPECT_FALSE(roadm_.channel_in_use(d0_, 7));
}

TEST_F(RoadmTest, ColorlessPortSteersAnywhere) {
  // Same port works on any degree and any channel across its lifetime —
  // the "colorless and non-directional" property the paper requires.
  ASSERT_TRUE(roadm_.configure_add_drop(ports_[0], d0_, 3).ok());
  ASSERT_TRUE(roadm_.release_add_drop(ports_[0]).ok());
  ASSERT_TRUE(roadm_.configure_add_drop(ports_[0], d2_, 31).ok());
  EXPECT_TRUE(roadm_.channel_in_use(d2_, 31));
}

TEST_F(RoadmTest, FixedPortRefusesToSteer) {
  const PortId fixed = roadm_.add_fixed_port(d1_, 9);
  EXPECT_EQ(roadm_.configure_add_drop(fixed, d0_, 9).error().code(),
            ErrorCode::kConflict);
  EXPECT_EQ(roadm_.configure_add_drop(fixed, d1_, 10).error().code(),
            ErrorCode::kConflict);
  EXPECT_TRUE(roadm_.configure_add_drop(fixed, d1_, 9).ok());
}

TEST_F(RoadmTest, FreeChannelsReflectUse) {
  EXPECT_EQ(roadm_.free_channels(d0_).size(), 40u);
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  ASSERT_TRUE(roadm_.configure_add_drop(ports_[0], d0_, 6).ok());
  EXPECT_EQ(roadm_.free_channels(d0_).size(), 38u);
  EXPECT_FALSE(roadm_.free_channels(d0_).contains(5));
  EXPECT_FALSE(roadm_.free_channels(d0_).contains(6));
}

TEST_F(RoadmTest, LinkFailureRaisesPerChannelLos) {
  std::vector<Alarm> alarms;
  roadm_.set_alarm_sink([&](const Alarm& a) { alarms.push_back(a); });
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  ASSERT_TRUE(roadm_.configure_add_drop(ports_[0], d0_, 6).ok());
  roadm_.on_link_failed(LinkId{100}, seconds(10));  // faces d0_
  // One degree-level OSC alarm + ch5 express + ch6 add/drop on d0.
  ASSERT_EQ(alarms.size(), 3u);
  EXPECT_FALSE(alarms[0].channel.has_value());  // the OSC alarm
  for (const auto& a : alarms) {
    EXPECT_EQ(a.type, AlarmType::kLos);
    EXPECT_EQ(a.link, LinkId{100});
    EXPECT_EQ(a.raised_at, seconds(10));
  }
  alarms.clear();
  roadm_.on_link_restored(LinkId{100}, seconds(20));
  ASSERT_EQ(alarms.size(), 3u);
  EXPECT_EQ(alarms[0].type, AlarmType::kClear);
}

TEST_F(RoadmTest, UnconfiguredDegreeStillReportsOsc) {
  std::vector<Alarm> alarms;
  roadm_.set_alarm_sink([&](const Alarm& a) { alarms.push_back(a); });
  ASSERT_TRUE(roadm_.configure_express(5, d0_, d1_).ok());
  roadm_.on_link_failed(LinkId{102}, seconds(1));  // d2 carries nothing
  // Only the supervisory-channel alarm: no per-channel LOS.
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_FALSE(alarms[0].channel.has_value());
  EXPECT_EQ(alarms[0].link, LinkId{102});
}

TEST(Transponder, LifecycleIdleTunedActive) {
  Transponder ot(TransponderId{1}, NodeId{0}, rates::k10G);
  EXPECT_EQ(ot.state(), Transponder::State::kIdle);
  EXPECT_EQ(ot.activate().error().code(), ErrorCode::kConflict);
  ASSERT_TRUE(ot.tune(5).ok());
  EXPECT_EQ(ot.state(), Transponder::State::kTuned);
  EXPECT_EQ(ot.channel(), 5);
  ASSERT_TRUE(ot.activate().ok());
  EXPECT_EQ(ot.state(), Transponder::State::kActive);
  // Cannot retune or reset while carrying traffic.
  EXPECT_EQ(ot.tune(6).error().code(), ErrorCode::kConflict);
  EXPECT_EQ(ot.reset().error().code(), ErrorCode::kConflict);
  ASSERT_TRUE(ot.deactivate().ok());
  ASSERT_TRUE(ot.tune(6).ok());  // retune from tuned is allowed
  EXPECT_EQ(ot.channel(), 6);
  ASSERT_TRUE(ot.reset().ok());
  EXPECT_EQ(ot.channel(), kNoChannel);
}

TEST(Transponder, FailureBlocksEverything) {
  Transponder ot(TransponderId{1}, NodeId{0}, rates::k10G);
  ot.fail();
  EXPECT_EQ(ot.tune(5).error().code(), ErrorCode::kDeviceFault);
  EXPECT_EQ(ot.activate().error().code(), ErrorCode::kDeviceFault);
  ot.repair();
  EXPECT_TRUE(ot.tune(5).ok());
}

TEST(Regenerator, EngageRelease) {
  Regenerator r(RegenId{1}, NodeId{2}, rates::k10G);
  EXPECT_FALSE(r.in_use());
  ASSERT_TRUE(r.engage(5, 9).ok());
  EXPECT_TRUE(r.in_use());
  EXPECT_EQ(r.upstream_channel(), 5);
  EXPECT_EQ(r.downstream_channel(), 9);
  EXPECT_EQ(r.engage(1, 2).error().code(), ErrorCode::kBusy);
  ASSERT_TRUE(r.release().ok());
  EXPECT_EQ(r.release().error().code(), ErrorCode::kConflict);
}

TEST(Muxponder, PortAllocation) {
  Muxponder m(MuxponderId{1}, CustomerId{1}, NodeId{0});
  EXPECT_EQ(m.line_rate(), rates::k40G);
  for (std::size_t i = 0; i < Muxponder::kClientPorts; ++i) {
    auto p = m.allocate_client_port();
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value(), i);
  }
  EXPECT_EQ(m.allocate_client_port().error().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(m.provisioned(), rates::k10G * 4);
  ASSERT_TRUE(m.release_client_port(2).ok());
  EXPECT_FALSE(m.port_in_use(2));
  auto again = m.allocate_client_port();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 2u);
}

TEST(Muxponder, ClaimSpecificPort) {
  Muxponder m(MuxponderId{1}, CustomerId{1}, NodeId{0});
  ASSERT_TRUE(m.claim_client_port(3).ok());
  EXPECT_EQ(m.claim_client_port(3).error().code(), ErrorCode::kBusy);
  EXPECT_EQ(m.claim_client_port(9).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(m.release_client_port(0).error().code(), ErrorCode::kConflict);
}

TEST(ReachModel, OsnrDegradesWithDistanceAndHops) {
  const auto t = topology::paper_testbed();
  ReachModel reach;
  const auto p1 =
      topology::shortest_path(t.graph, t.i, t.iv, topology::hop_weight());
  const auto p3 = topology::shortest_path(
      t.graph, t.i, t.iv, topology::hop_weight(),
      [&](const topology::Link& l) {
        return l.id != t.i_iv && l.id != t.i_iii;
      });
  ASSERT_TRUE(p1 && p3);
  EXPECT_GT(reach.osnr_at_end(t.graph, *p1), reach.osnr_at_end(t.graph, *p3));
}

TEST(ReachModel, ShortMetroPathNeedsNoRegen) {
  const auto t = topology::paper_testbed();
  ReachModel reach;
  const auto p =
      topology::shortest_path(t.graph, t.i, t.iv, topology::hop_weight());
  const auto segs = reach.segment(t.graph, *p, profile_10g());
  EXPECT_EQ(segs.size(), 1u);
  EXPECT_TRUE(reach.regen_sites(t.graph, *p, profile_10g()).empty());
}

TEST(ReachModel, TranscontinentalPathNeedsRegens) {
  const auto g = topology::us_backbone();
  ReachModel reach;
  const auto sea = *g.find_node("Seattle");
  const auto pri = *g.find_node("Princeton");
  const auto p = topology::shortest_path(g, sea, pri,
                                         topology::distance_weight());
  ASSERT_TRUE(p.has_value());
  ASSERT_GT(p->length(g).in_km(), 3000.0);
  const auto sites = reach.regen_sites(g, *p, profile_10g());
  EXPECT_GE(sites.size(), 1u);
  // Regen sites are interior path nodes.
  for (const NodeId site : sites) {
    EXPECT_TRUE(p->uses_node(site));
    EXPECT_NE(site, sea);
    EXPECT_NE(site, pri);
  }
}

TEST(ReachModel, SegmentsCoverPathExactly) {
  const auto g = topology::us_backbone();
  ReachModel reach;
  const auto p = topology::shortest_path(g, *g.find_node("Seattle"),
                                         *g.find_node("CollegePark"),
                                         topology::distance_weight());
  ASSERT_TRUE(p.has_value());
  const auto segs = reach.segment(g, *p, profile_40g());
  ASSERT_FALSE(segs.empty());
  EXPECT_EQ(segs.front().first_link, 0u);
  EXPECT_EQ(segs.back().last_link, p->links.size() - 1);
  for (std::size_t i = 1; i < segs.size(); ++i)
    EXPECT_EQ(segs[i].first_link, segs[i - 1].last_link + 1);
}

TEST(ReachModel, HigherRatesHaveShorterReach) {
  EXPECT_GT(profile_10g().max_reach, profile_40g().max_reach);
  EXPECT_GT(profile_40g().max_reach, profile_100g().max_reach);
  EXPECT_LT(profile_10g().required_osnr_db, profile_40g().required_osnr_db);
}

TEST(ReachModel, ProfileForRate) {
  EXPECT_EQ(profile_for(rates::k10G).rate, rates::k10G);
  EXPECT_EQ(profile_for(rates::k40G).rate, rates::k40G);
  EXPECT_EQ(profile_for(DataRate::gbps(1)).rate, rates::k10G);
}

// Property: 40G segmentation is never coarser than 10G segmentation on the
// same path (worse OSNR tolerance can only add regens).
class ReachProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReachProperty, FortyGigNeedsAtLeastAsManySegments) {
  Rng rng(GetParam());
  const auto g = topology::random_mesh(12, 3.0, rng);
  ReachModel reach;
  for (std::size_t dst = 1; dst < g.nodes().size(); ++dst) {
    const auto p = topology::shortest_path(g, NodeId{0}, NodeId{dst},
                                           topology::distance_weight());
    if (!p) continue;
    try {
      const auto s10 = reach.segment(g, *p, profile_10g());
      const auto s40 = reach.segment(g, *p, profile_40g());
      EXPECT_GE(s40.size(), s10.size());
    } catch (const std::runtime_error&) {
      // A single span can exceed 40G reach; acceptable for random meshes.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachProperty,
                         ::testing::Values(3, 5, 8, 13, 21));

}  // namespace
}  // namespace griphon::dwdm
