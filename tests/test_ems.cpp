// Tests for the EMS emulation: command execution against devices, strict
// per-EMS serialization, latency profiles, retransmission dedup and alarm
// forwarding.
#include <gtest/gtest.h>

#include "dwdm/roadm.hpp"
#include "dwdm/transponder.hpp"
#include "ems/ems_server.hpp"
#include "proto/client.hpp"

namespace griphon::ems {
namespace {

struct EmsFixture : ::testing::Test {
  EmsFixture()
      : chan(&engine, proto::ControlChannel::Params{}),
        server(&engine, &chan.b(), EmsLatencyProfile::testbed_2011(),
               "roadm-ems"),
        client(&engine, &chan.a(), client_params()),
        roadm(RoadmId{0}, NodeId{0}, dwdm::WavelengthGrid(40)),
        ot(TransponderId{0}, NodeId{0}, rates::k10G) {
    roadm.attach_degree(LinkId{0});
    roadm.attach_degree(LinkId{1});
    port = roadm.add_ports(1).front();
    server.manage_roadm(&roadm);
    server.manage_ot(&ot);
  }
  static proto::RequestClient::Params client_params() {
    proto::RequestClient::Params p;
    p.timeout = seconds(60);
    return p;
  }

  sim::Engine engine{7};
  proto::ControlChannel chan;
  EmsServer server;
  proto::RequestClient client;
  dwdm::Roadm roadm;
  dwdm::Transponder ot;
  PortId port;
};

TEST_F(EmsFixture, ExecutesCommandAgainstDevice) {
  std::optional<proto::Response> resp;
  client.request(proto::Message{proto::OtTune{TransponderId{0}, 5}},
                 [&](Result<proto::Response> r) { resp = r.value(); });
  engine.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(ot.state(), dwdm::Transponder::State::kTuned);
  EXPECT_EQ(ot.channel(), 5);
}

TEST_F(EmsFixture, CommandLatencyMatchesProfile) {
  SimTime done{};
  client.request(proto::Message{proto::OtTune{TransponderId{0}, 5}},
                 [&](Result<proto::Response>) { done = engine.now(); });
  engine.run();
  // overhead (~0.8s) + laser tuning (~9s) + 2x channel latency.
  EXPECT_GT(done, seconds(8));
  EXPECT_LT(done, seconds(13));
}

TEST_F(EmsFixture, DeviceErrorsPropagateAsResponseCodes) {
  std::optional<proto::Response> resp;
  // Activating an idle OT violates its FSM.
  client.request(
      proto::Message{proto::OtSetState{TransponderId{0},
                                       proto::OtSetState::Action::kActivate}},
      [&](Result<proto::Response> r) { resp = r.value(); });
  engine.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(static_cast<ErrorCode>(resp->code), ErrorCode::kConflict);
}

TEST_F(EmsFixture, UnknownDeviceRejected) {
  std::optional<proto::Response> resp;
  client.request(proto::Message{proto::OtTune{TransponderId{42}, 5}},
                 [&](Result<proto::Response> r) { resp = r.value(); });
  engine.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(static_cast<ErrorCode>(resp->code), ErrorCode::kNotFound);
}

TEST_F(EmsFixture, CommandsAreSerialized) {
  // Two tune commands: the second must wait for the first (one craft
  // dialogue per EMS), so completion times differ by about a full command.
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i)
    client.request(proto::Message{proto::OtTune{TransponderId{0}, 5 + i}},
                   [&](Result<proto::Response>) {
                     done.push_back(engine.now());
                   });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GT(done[1] - done[0], seconds(8));
  EXPECT_EQ(server.commands_executed(), 2u);
}

TEST_F(EmsFixture, RetransmissionAnsweredFromCache) {
  // Deliver the same frame twice (as a retrying client would): the command
  // must execute once, and both frames get answered.
  const proto::Bytes frame = proto::encode_frame(
      777, proto::Message{proto::OtTune{TransponderId{0}, 9}});
  int responses = 0;
  chan.a().on_receive([&](const proto::Bytes&) { ++responses; });
  chan.a().send(frame);
  engine.run();
  chan.a().send(frame);  // late retransmission
  engine.run();
  EXPECT_EQ(server.commands_executed(), 1u);
  EXPECT_EQ(responses, 2);
}

TEST_F(EmsFixture, DuplicateInQueueDropped) {
  const proto::Bytes frame = proto::encode_frame(
      888, proto::Message{proto::OtTune{TransponderId{0}, 9}});
  chan.a().send(frame);
  chan.a().send(frame);  // arrives while the first is still queued/running
  engine.run();
  EXPECT_EQ(server.commands_executed(), 1u);
}

TEST_F(EmsFixture, AlarmsForwardedToClientEvents) {
  std::vector<Alarm> alarms;
  client.on_event([&](const proto::Frame& f) {
    alarms.push_back(std::get<proto::AlarmEvent>(f.message).alarm);
  });
  // Configure a use on degree 0, then fail its link: LOS must arrive.
  std::optional<proto::Response> resp;
  client.request(
      proto::Message{proto::RoadmAddDrop{RoadmId{0}, port, 0, 3, true}},
      [&](Result<proto::Response> r) { resp = r.value(); });
  engine.run();
  ASSERT_TRUE(resp && resp->ok());
  roadm.on_link_failed(LinkId{0}, engine.now());
  engine.run();
  ASSERT_EQ(alarms.size(), 2u);  // degree OSC alarm + per-channel LOS
  EXPECT_EQ(alarms[0].type, AlarmType::kLos);
  EXPECT_EQ(alarms[0].link, LinkId{0});
  EXPECT_FALSE(alarms[0].channel.has_value());
  EXPECT_EQ(alarms[1].channel, 3);
}

TEST_F(EmsFixture, FastProfileIsMuchFaster) {
  // Same workflow under the §4 "fast hardware" profile.
  sim::Engine engine2{7};
  proto::ControlChannel chan2(&engine2, proto::ControlChannel::Params{});
  EmsServer fast(&engine2, &chan2.b(), EmsLatencyProfile::fast_hardware(),
                 "fast-ems");
  proto::RequestClient client2(&engine2, &chan2.a(), client_params());
  dwdm::Transponder ot2(TransponderId{0}, NodeId{0}, rates::k10G);
  fast.manage_ot(&ot2);
  SimTime done{};
  client2.request(proto::Message{proto::OtTune{TransponderId{0}, 5}},
                  [&](Result<proto::Response>) { done = engine2.now(); });
  engine2.run();
  EXPECT_LT(done, seconds(1));
}

TEST_F(EmsFixture, MalformedFrameIgnored) {
  chan.a().send(proto::Bytes{1, 2, 3});
  engine.run();
  EXPECT_EQ(server.commands_executed(), 0u);
}

}  // namespace
}  // namespace griphon::ems
