// Error-path coverage for the control plane (ISSUE 3 nodiscard sweep).
//
// Every Result/Status-returning API is [[nodiscard]]; these tests pin down
// the behavior those results carry on the paths where provisioning or
// restoration *cannot* succeed: the controller must report the failure
// through the callback and leave no half-built state behind — never
// silently proceed.
#include <gtest/gtest.h>

#include <optional>

#include "core/scenario.hpp"

namespace griphon::core {
namespace {

/// Submits a connect and runs the engine to completion; returns the raw
/// Result so failure paths can assert on the error code.
Result<ConnectionId> connect_result(TestbedScenario& s, MuxponderId a,
                                    MuxponderId b, DataRate rate,
                                    ProtectionMode prot) {
  std::optional<Result<ConnectionId>> result;
  s.portal->connect(a, b, rate, prot,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  EXPECT_TRUE(result.has_value()) << "connect callback never fired";
  return std::move(*result);
}

// --- setup failure: transponder pool empty --------------------------------

TEST(ErrorPaths, SetupFailsWithNoFreeTransponder) {
  NetworkModel::Config config;
  config.ots_per_node = 0;  // no wavelength can ever get line optics
  config.with_otn = false;  // OTN grooming disabled: no alternate path
  TestbedScenario s(71, config);

  const auto r = connect_result(s, s.site_i, s.site_iv, rates::k10G,
                                ProtectionMode::kRestorable);
  ASSERT_FALSE(r.ok()) << "setup must fail with an empty OT pool";
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);

  // The failure was reported, not swallowed: counted, and nothing is up.
  EXPECT_EQ(s.controller->stats().setups_failed, 1u);
  EXPECT_EQ(s.controller->stats().setups_ok, 0u);
  EXPECT_EQ(s.controller->active_connections(), 0u);
}

// --- setup failure: spectrum exhausted ------------------------------------

TEST(ErrorPaths, SetupFailsWhenNoWavelengthIsLeft) {
  NetworkModel::Config config;
  config.channels = 1;  // one channel on the whole testbed
  config.with_otn = false;
  TestbedScenario s(72, config);

  // Keep connecting the same PoP pair until the single channel is exhausted
  // on every candidate route; the testbed has 3 I->IV routes, so at most 3
  // can ever succeed.
  std::size_t ok = 0;
  std::optional<Error> failure;
  for (int attempt = 0; attempt < 4 && !failure; ++attempt) {
    const auto r = connect_result(s, s.site_i, s.site_iv, rates::k10G,
                                  ProtectionMode::kRestorable);
    if (r.ok())
      ++ok;
    else
      failure = r.error();
  }
  ASSERT_TRUE(failure.has_value()) << "spectrum exhaustion never reported";
  EXPECT_EQ(failure->code(), ErrorCode::kResourceExhausted);
  EXPECT_GE(ok, 1u);  // the first request had a clear channel everywhere

  // Accounting matches what the customer saw: failures counted, and only
  // the successful setups are active.
  EXPECT_EQ(s.controller->stats().setups_failed, 1u);
  EXPECT_EQ(s.controller->stats().setups_ok, ok);
  EXPECT_EQ(s.controller->active_connections(), ok);
}

// --- release of an unknown connection -------------------------------------

TEST(ErrorPaths, ReleaseOfUnknownConnectionReportsNotFound) {
  TestbedScenario s(73);

  std::optional<Status> done;
  s.controller->release_connection(ConnectionId{9999},
                                   [&](Status st) { done = st; });
  s.engine.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->ok());
  EXPECT_EQ(done->error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.controller->stats().releases, 0u);
}

TEST(ErrorPaths, DoubleReleaseReportsConflict) {
  TestbedScenario s(74);
  const auto r = connect_result(s, s.site_i, s.site_iv, rates::k10G,
                                ProtectionMode::kRestorable);
  ASSERT_TRUE(r.ok());
  const ConnectionId id = r.value();

  std::optional<Status> first;
  s.portal->disconnect(id, [&](Status st) { first = st; });
  s.engine.run();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok()) << first->error().message();

  // Releasing a released connection is a state-machine violation the
  // caller must hear about, not an idempotent no-op.
  std::optional<Status> second;
  s.portal->disconnect(id, [&](Status st) { second = st; });
  s.engine.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->ok());
  EXPECT_EQ(second->error().code(), ErrorCode::kConflict);
  EXPECT_EQ(s.controller->stats().releases, 1u);
}

// --- restoration with no disjoint route -----------------------------------

TEST(ErrorPaths, RestorationFailsWhenSiteIsIsolated) {
  TestbedScenario s(75);
  const auto r = connect_result(s, s.site_i, s.site_iv, rates::k10G,
                                ProtectionMode::kRestorable);
  ASSERT_TRUE(r.ok());
  const ConnectionId id = r.value();
  ASSERT_EQ(s.controller->connection(id).state, ConnectionState::kActive);

  // Sever every fiber out of PoP I: restoration has no route to replan
  // onto, disjoint or otherwise.
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iii);
  s.model->fail_link(s.topo.i_ii);
  s.engine.run();

  const auto& c = s.controller->connection(id);
  EXPECT_EQ(c.state, ConnectionState::kFailed);
  EXPECT_EQ(c.restorations, 0);  // no successful restoration happened
  EXPECT_GE(s.controller->stats().restorations_failed, 1u);
  EXPECT_EQ(s.controller->stats().restorations_ok, 0u);
  EXPECT_EQ(s.controller->active_connections(), 0u);

  // The failure is a report, not an abandonment: once the plant heals,
  // service returns.
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(id).state, ConnectionState::kActive);
}

}  // namespace
}  // namespace griphon::core
