// Executor equivalence: the dependency-DAG executor is a performance
// optimisation only. For a fixed seed and a fixed operation script, it
// must leave the plant in exactly the same final state as the 2011
// sequential executor — same device configuration (digest), same
// per-connection terminal statuses, same accounting. Scripts drain the
// engine at every op boundary so planning decisions see identical
// inventory in both modes; only the in-flight interleaving differs.
//
// Under a chaos `combined` plan the injector's per-command fault draws
// depend on command order, so mid-run outcomes legitimately diverge; the
// equivalence obligation there is convergence: after the plan is
// disarmed, faults healed and every connection drained, both executors
// must arrive at the identical — and empty — plant state.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "chaos/fault_plan.hpp"
#include "common/rng.hpp"
#include "core/scenario.hpp"

namespace griphon::core {
namespace {

struct Outcome {
  std::string digest;    ///< sorted device-state digest of the whole plant
  std::string statuses;  ///< per-connection terminal state, in id order
  std::uint64_t setups_ok = 0;
  std::uint64_t setups_failed = 0;
  std::uint64_t releases = 0;
};

GriphonController::Params params_for(ExecMode mode) {
  GriphonController::Params p;
  p.exec_mode = mode;
  return p;
}

void append_status(std::string* out, ConnectionId id, ConnectionState st) {
  *out += std::to_string(id.value()) + ":" +
          std::to_string(static_cast<int>(st)) + "\n";
}

// --- paper testbed -------------------------------------------------------

Outcome run_testbed_script(ExecMode mode, std::uint64_t seed) {
  TestbedScenario s(seed, NetworkModel::Config{}, params_for(mode));
  Rng rng(seed * 97 + 13);  // independent of the controller's RNG
  std::vector<ConnectionId> ids;
  std::vector<ConnectionId> live;
  std::string connects;  // per-op connect results (must match across modes)

  const MuxponderId sites[] = {s.site_i, s.site_iii, s.site_iv};
  static const DataRate kRates[] = {rates::k1G, DataRate::gbps(5),
                                    rates::k10G};
  static const ProtectionMode kProt[] = {ProtectionMode::kUnprotected,
                                         ProtectionMode::kRestorable,
                                         ProtectionMode::kOnePlusOne};
  const LinkId links[] = {s.topo.i_ii, s.topo.i_iii, s.topo.i_iv};
  std::vector<LinkId> cut;

  for (int op = 0; op < 40; ++op) {
    const double dice = rng.uniform(0, 1);
    if (dice < 0.5) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, 2));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (a == b) b = (b + 1) % 3;
      s.portal->connect(sites[a], sites[b], kRates[rng.uniform_int(0, 2)],
                        kProt[rng.uniform_int(0, 2)],
                        [&, op](Result<ConnectionId> r) {
                          connects += std::to_string(op) + ":" +
                                      (r.ok() ? "ok" : r.error().message()) +
                                      "\n";
                          if (r.ok()) {
                            ids.push_back(r.value());
                            live.push_back(r.value());
                          }
                        });
    } else if (dice < 0.65 && !live.empty()) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      const ConnectionId id = live[at];
      s.portal->disconnect(id, [&live, id](Status st) {
        if (st.ok()) std::erase(live, id);
      });
    } else if (dice < 0.78 && cut.size() < 2) {
      const LinkId link = links[rng.uniform_int(0, 2)];
      if (!s.model->link_failed(link)) {
        s.model->fail_link(link);
        cut.push_back(link);
      }
    } else if (dice < 0.9 && !cut.empty()) {
      s.model->repair_link(cut.back());
      cut.pop_back();
    } else if (!live.empty()) {
      s.controller->regroom(live.front(), [](Status) {});
    }
    s.engine.run();  // op boundary: both modes observe identical inventory
  }
  for (const LinkId link : cut) s.model->repair_link(link);
  s.engine.run();

  Outcome o;
  o.digest = s.controller->device_state_digest();
  o.statuses = connects;
  for (const ConnectionId id : ids)
    append_status(&o.statuses, id, s.controller->connection(id).state);
  o.setups_ok = s.controller->stats().setups_ok;
  o.setups_failed = s.controller->stats().setups_failed;
  o.releases = s.controller->stats().releases;
  return o;
}

class TestbedEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TestbedEquiv, DagMatchesSequentialFinalState) {
  const Outcome seq = run_testbed_script(ExecMode::kSequential, GetParam());
  const Outcome dag = run_testbed_script(ExecMode::kDag, GetParam());
  EXPECT_EQ(seq.digest, dag.digest);
  EXPECT_EQ(seq.statuses, dag.statuses);
  EXPECT_EQ(seq.setups_ok, dag.setups_ok);
  EXPECT_EQ(seq.setups_failed, dag.setups_failed);
  EXPECT_EQ(seq.releases, dag.releases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestbedEquiv,
                         ::testing::Values(101u, 202u, 303u));

// --- US backbone, 50 operations ------------------------------------------

Outcome run_backbone_script(ExecMode mode, std::uint64_t seed) {
  BackboneScenario::Options opt;
  opt.customers = 2;
  opt.sites_per_customer = 3;
  opt.quota = DataRate::gbps(300);
  opt.params = params_for(mode);
  BackboneScenario s(seed, opt);
  Rng rng(seed * 131 + 5);
  std::vector<ConnectionId> ids;
  std::vector<std::pair<std::size_t, ConnectionId>> live;
  std::string connects;
  const auto num_links = s.model->graph().links().size();
  std::vector<LinkId> cut;

  for (int op = 0; op < 50; ++op) {
    const double dice = rng.uniform(0, 1);
    if (dice < 0.5) {
      const auto cust = static_cast<std::size_t>(rng.uniform_int(0, 1));
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, 2));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (a == b) b = (b + 1) % 3;
      static const DataRate kRates[] = {rates::k1G, DataRate::gbps(3),
                                        rates::k10G, rates::k40G};
      static const ProtectionMode kProt[] = {ProtectionMode::kUnprotected,
                                             ProtectionMode::kRestorable};
      s.portals[cust]->connect(
          s.site(cust, a), s.site(cust, b), kRates[rng.uniform_int(0, 3)],
          kProt[rng.uniform_int(0, 1)], [&, op, cust](Result<ConnectionId> r) {
            connects += std::to_string(op) + ":" +
                        (r.ok() ? "ok" : r.error().message()) + "\n";
            if (r.ok()) {
              ids.push_back(r.value());
              live.emplace_back(cust, r.value());
            }
          });
    } else if (dice < 0.62 && !live.empty()) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      const auto [cust, id] = live[at];
      s.portals[cust]->disconnect(id, [&live, id = id](Status st) {
        if (st.ok())
          std::erase_if(live, [&](const auto& e) { return e.second == id; });
      });
    } else if (dice < 0.75 && cut.size() < 2) {
      const LinkId link{static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<int>(num_links) - 1))};
      if (!s.model->link_failed(link)) {
        s.model->fail_link(link);
        cut.push_back(link);
      }
    } else if (dice < 0.88 && !cut.empty()) {
      s.model->repair_link(cut.back());
      cut.pop_back();
    } else if (!live.empty()) {
      s.controller->regroom(live.front().second, [](Status) {});
    }
    s.engine.run();
  }
  for (const LinkId link : cut) s.model->repair_link(link);
  s.engine.run();

  Outcome o;
  o.digest = s.controller->device_state_digest();
  o.statuses = connects;
  for (const ConnectionId id : ids)
    append_status(&o.statuses, id, s.controller->connection(id).state);
  o.setups_ok = s.controller->stats().setups_ok;
  o.setups_failed = s.controller->stats().setups_failed;
  o.releases = s.controller->stats().releases;
  return o;
}

class BackboneEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackboneEquiv, DagMatchesSequentialFinalState) {
  const Outcome seq = run_backbone_script(ExecMode::kSequential, GetParam());
  const Outcome dag = run_backbone_script(ExecMode::kDag, GetParam());
  EXPECT_EQ(seq.digest, dag.digest);
  EXPECT_EQ(seq.statuses, dag.statuses);
  EXPECT_EQ(seq.setups_ok, dag.setups_ok);
  EXPECT_EQ(seq.setups_failed, dag.setups_failed);
  EXPECT_EQ(seq.releases, dag.releases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackboneEquiv, ::testing::Values(11u, 29u));

// --- chaos `combined` plan ------------------------------------------------

struct ChaosOutcome {
  std::string digest;
  std::string statuses;
  std::size_t active = 0;
};

ChaosOutcome run_chaos_script(ExecMode mode, std::uint64_t seed) {
  TestbedScenario s(seed, NetworkModel::Config{}, params_for(mode));

  // Fault-free phase: establish a mixed set of connections. Identical in
  // both modes (asserted via `statuses`).
  std::vector<ConnectionId> ids;
  std::string connects;
  const struct {
    MuxponderId a, b;
    DataRate rate;
    ProtectionMode prot;
  } setups[] = {
      {s.site_i, s.site_iv, rates::k10G, ProtectionMode::kRestorable},
      {s.site_i, s.site_iii, DataRate::gbps(3),
       ProtectionMode::kUnprotected},
      {s.site_iii, s.site_iv, rates::k1G, ProtectionMode::kRestorable},
  };
  for (std::size_t i = 0; i < std::size(setups); ++i) {
    s.portal->connect(setups[i].a, setups[i].b, setups[i].rate,
                      setups[i].prot, [&, i](Result<ConnectionId> r) {
                        connects += std::to_string(i) + ":" +
                                    (r.ok() ? "ok" : r.error().message()) +
                                    "\n";
                        if (r.ok()) ids.push_back(r.value());
                      });
    s.engine.run();
  }

  // Chaos window: the combined plan (EMS flaps + channel loss + device
  // faults), plus a fiber cut and repair at fixed sim times. Fault draws
  // depend on command order, so the two modes may diverge here.
  chaos::FaultInjector injector(s.model.get(), chaos::FaultPlan::combined(),
                                seed + 1);
  injector.arm();
  for (int slice = 0; slice < 12; ++slice) {
    if (slice == 3) s.model->fail_link(s.topo.i_iv);
    if (slice == 7 && s.model->link_failed(s.topo.i_iv))
      s.model->repair_link(s.topo.i_iv);
    s.engine.run_until(s.engine.now() + from_seconds(300));
  }
  injector.disarm();
  injector.heal_all();
  if (s.model->link_failed(s.topo.i_iv)) s.model->repair_link(s.topo.i_iv);
  s.engine.run();

  // Convergence: drain every connection (retrying ones that are busy
  // mid-restoration), return groomed carriers, and audit the plant.
  std::vector<ConnectionId> remaining = ids;
  for (int attempt = 0; attempt < 6 && !remaining.empty(); ++attempt) {
    auto batch = remaining;
    for (const ConnectionId id : batch)
      s.portal->disconnect(id, [&remaining, id](Status st) {
        if (st.ok()) std::erase(remaining, id);
      });
    s.engine.run();
  }
  EXPECT_TRUE(remaining.empty());
  s.controller->decommission_idle_carriers([](Status) {});
  s.engine.run();

  // Chaos can abandon benign residue (e.g. a tuned-but-dark OT from a
  // restoration attempt the injector killed). The PR 5 resync audit is
  // the production answer: sweep leaked config, then the plant digest
  // must be empty.
  std::optional<Result<GriphonController::ResyncReport>> audit;
  s.controller->resync(
      [&](Result<GriphonController::ResyncReport> r) { audit = std::move(r); });
  s.engine.run();
  EXPECT_TRUE(audit && audit->ok());

  ChaosOutcome o;
  o.digest = s.controller->device_state_digest();
  o.statuses = connects;
  for (const ConnectionId id : ids)
    append_status(&o.statuses, id, s.controller->connection(id).state);
  o.active = s.controller->active_connections();
  return o;
}

class ChaosEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosEquiv, CombinedPlanConvergesToIdenticalCleanPlant) {
  const ChaosOutcome seq = run_chaos_script(ExecMode::kSequential, GetParam());
  const ChaosOutcome dag = run_chaos_script(ExecMode::kDag, GetParam());
  // Both executors end on the identical — and empty — plant.
  EXPECT_EQ(seq.digest, dag.digest);
  EXPECT_EQ(dag.digest, "");
  EXPECT_EQ(seq.statuses, dag.statuses);
  EXPECT_EQ(seq.active, 0u);
  EXPECT_EQ(dag.active, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosEquiv, ::testing::Values(7u, 77u));

}  // namespace
}  // namespace griphon::core
