// Tests for the controller's extension features: dynamic OTU-carrier
// grooming, 40G service, the EVC service boundary, smallest-fit OT
// selection, the customer dashboard, and failure/race edge cases.
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace griphon::core {
namespace {

/// 2011-testbed orchestration (one EMS dialogue at a time) for tests that
/// assert the paper's measured timing bands.
GriphonController::Params sequential_params() {
  GriphonController::Params p;
  p.exec_mode = ExecMode::kSequential;
  return p;
}

TEST(Grooming, NewCarrierProvisionedWhenOtnFull) {
  // A plant whose OTN layer has exactly one 10G carrier (8 slots) on the
  // direct I-IV route and nothing else.
  sim::Engine engine(80);
  auto topo = topology::paper_testbed();
  NetworkModel model(&engine, topo.graph, NetworkModel::Config{});
  ASSERT_TRUE(model.add_otn_carrier(topo.i, topo.iv, rates::k10G,
                                    {topo.i_iv})
                  .ok());
  const auto site_i = model.add_customer_site(CustomerId{1}, "I", topo.i).nte;
  const auto site_iv =
      model.add_customer_site(CustomerId{1}, "IV", topo.iv).nte;
  GriphonController controller(&model, sequential_params());
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));

  // First 5G circuit fits in the lone carrier (5 of 8 slots).
  std::optional<Result<ConnectionId>> first, second;
  portal.connect(site_i, site_iv, DataRate::gbps(5),
                 ProtectionMode::kUnprotected,
                 [&](Result<ConnectionId> r) { first = std::move(r); });
  engine.run();
  ASSERT_TRUE(first && first->ok());
  EXPECT_EQ(controller.carriers_groomed(), 0u);

  // The second 5G circuit does not fit: the controller must groom a new
  // OTU carrier onto the DWDM layer, then complete the request.
  portal.connect(site_i, site_iv, DataRate::gbps(5),
                 ProtectionMode::kUnprotected,
                 [&](Result<ConnectionId> r) { second = std::move(r); });
  engine.run();
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->ok()) << second->error().message();
  EXPECT_EQ(controller.carriers_groomed(), 1u);
  EXPECT_EQ(model.otn().carriers().size(), 2u);
  // The groomed carrier consumed DWDM spectrum and pool transponders.
  std::size_t active_ots = 0;
  for (const auto& ot : model.ots())
    if (ot->state() == dwdm::Transponder::State::kActive) ++active_ots;
  EXPECT_EQ(active_ots, 2u);
  EXPECT_GT(model.roadm_at(topo.i).active_uses(), 0u);
  // Grooming takes a wavelength setup: the second connection was slower.
  const auto& c2 = controller.connection(second->value());
  EXPECT_GT(to_seconds(c2.setup_duration), 60.0);
}

TEST(Grooming, FailsCleanlyWithoutSpectrumPath) {
  // No OTN carriers AND destination unreachable on the DWDM layer: the
  // groom must fail and the request must roll back.
  sim::Engine engine(81);
  topology::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_node("island");
  g.add_link(a, b, Distance::km(10));
  NetworkModel model(&engine, std::move(g), NetworkModel::Config{});
  const auto sa = model.add_customer_site(CustomerId{1}, "A", a).nte;
  const auto si =
      model.add_customer_site(CustomerId{1}, "Island", NodeId{2}).nte;
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));
  std::optional<Result<ConnectionId>> result;
  portal.connect(sa, si, rates::k1G, ProtectionMode::kUnprotected,
                 [&](Result<ConnectionId> r) { result = std::move(r); });
  engine.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  EXPECT_EQ(controller.carriers_groomed(), 0u);
  EXPECT_EQ(controller.stats().setups_failed, 1u);
}

TEST(FortyGig, WavelengthUsesFortyGigOts) {
  NetworkModel::Config cfg;
  cfg.ots_40g_per_node = 2;
  TestbedScenario s(82, cfg);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k40G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  const auto& c = s.controller->connection(*id);
  EXPECT_EQ(c.kind, ConnectionKind::kWavelength);
  EXPECT_EQ(s.model->ot(c.plan.src_ot).line_rate(), rates::k40G);
  EXPECT_EQ(s.model->ot(c.plan.dst_ot).line_rate(), rates::k40G);
}

TEST(FortyGig, RejectedWithoutFortyGigPool) {
  TestbedScenario s(83);  // default pools are 10G only
  std::optional<Result<ConnectionId>> result;
  s.portal->connect(s.site_i, s.site_iv, rates::k40G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  EXPECT_EQ(result->error().code(), ErrorCode::kResourceExhausted);
}

TEST(FortyGig, SmallestFitSparesBigTransponders) {
  NetworkModel::Config cfg;
  cfg.ots_per_node = 2;
  cfg.ots_40g_per_node = 2;
  TestbedScenario s(84, cfg);
  // A 10G request must take a 10G OT even though 40G units are free.
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(
      s.model->ot(s.controller->connection(*id).plan.src_ot).line_rate(),
      rates::k10G);
}

TEST(ServiceBoundaries, SubGigabitBelongsToEvcLayer) {
  TestbedScenario s(85);
  std::optional<Result<ConnectionId>> result;
  s.portal->connect(s.site_i, s.site_iv, DataRate::mbps(500),
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  EXPECT_EQ(result->error().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(result->error().message().find("EVC"), std::string::npos);
}

TEST(Dashboard, RendersCustomerView) {
  TestbedScenario s(86);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  const std::string dash = s.portal->render_dashboard();
  EXPECT_NE(dash.find("DC-I"), std::string::npos);
  EXPECT_NE(dash.find("DC-IV"), std::string::npos);
  EXPECT_NE(dash.find("active"), std::string::npos);
  EXPECT_NE(dash.find("10"), std::string::npos);
  // The GUI hides carrier internals: no device names leak through.
  EXPECT_EQ(dash.find("roadm"), std::string::npos);
  EXPECT_EQ(dash.find("fxc"), std::string::npos);
}

TEST(Races, FiberCutDuringSetupTriggersRestoration) {
  TestbedScenario s(87);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  // Let the command train get half-way, then cut the fiber it targets.
  s.engine.run_until(seconds(30));
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  const auto& c = s.controller->connection(*id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_GE(c.restorations, 1);
  EXPECT_FALSE(c.plan.path.uses_link(s.topo.i_iv));
}

TEST(Races, ReleaseDuringRestorationRefused) {
  TestbedScenario s(88);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  s.model->fail_link(s.topo.i_iv);
  // Enter the restoration window (holddown is 2.5 s; restoration takes
  // over a minute), then try to release.
  s.engine.run_until(s.engine.now() + seconds(30));
  std::optional<Status> released;
  s.portal->disconnect(*id, [&](Status st) { released = st; });
  s.engine.run();
  ASSERT_TRUE(released.has_value());
  EXPECT_FALSE(released->ok());
  EXPECT_EQ(released->error().code(), ErrorCode::kBusy);
  // Restoration still completed.
  EXPECT_EQ(s.controller->connection(*id).state, ConnectionState::kActive);
}

TEST(Races, DoubleFailureRestoresViaSurvivingPath) {
  TestbedScenario s(89);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  // Cut the direct span AND the two-hop alternative at once: only the
  // three-hop route I-II-III-IV survives.
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iii);
  s.engine.run();
  const auto& c = s.controller->connection(*id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_EQ(c.plan.path.hops(), 3u);
}

TEST(Races, RestorationFailsWhenIsolatedThenRecoversOnRepair) {
  TestbedScenario s(90, NetworkModel::Config{}, sequential_params());
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  // Sever every path between I and IV.
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iii);
  s.model->fail_link(s.topo.i_ii);
  s.engine.run();
  EXPECT_EQ(s.controller->connection(*id).state, ConnectionState::kFailed);
  EXPECT_GE(s.controller->stats().restorations_failed, 1u);
  // Repairing the direct span must trigger a fresh re-provisioning (the
  // failed restoration attempt already released the old path's devices, so
  // light alone is not service).
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  const auto& c = s.controller->connection(*id);
  EXPECT_EQ(c.state, ConnectionState::kActive);
  EXPECT_GE(c.restorations, 1);
  // Outage covered the whole dark period: over a minute at least.
  EXPECT_GT(to_seconds(c.total_outage), 60.0);
}

TEST(Grooming, DecommissionReturnsWavelengthToPool) {
  sim::Engine engine(91);
  auto topo = topology::paper_testbed();
  NetworkModel model(&engine, topo.graph, NetworkModel::Config{});
  const auto site_i = model.add_customer_site(CustomerId{1}, "I", topo.i).nte;
  const auto site_iv =
      model.add_customer_site(CustomerId{1}, "IV", topo.iv).nte;
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));

  // No carriers exist: the first 1G circuit forces a groom.
  std::optional<ConnectionId> id;
  portal.connect(site_i, site_iv, rates::k1G, ProtectionMode::kUnprotected,
                 [&](Result<ConnectionId> r) {
                   if (r.ok()) id = r.value();
                 });
  engine.run();
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(controller.carriers_groomed(), 1u);
  const std::size_t uses_during =
      model.roadm_at(topo.i).active_uses();
  ASSERT_GT(uses_during, 0u);

  // While the circuit lives, the carrier must refuse to retire.
  controller.decommission_idle_carriers([](Status) {});
  engine.run();
  EXPECT_FALSE(model.otn().carriers().front().retired());

  // Release the circuit, then decommission: the wavelength comes down.
  portal.disconnect(*id, [](Status) {});
  engine.run();
  controller.decommission_idle_carriers([](Status) {});
  engine.run();
  EXPECT_TRUE(model.otn().carriers().front().retired());
  EXPECT_EQ(model.roadm_at(topo.i).active_uses(), 0u);
  for (const auto& ot : model.ots())
    EXPECT_NE(ot->state(), dwdm::Transponder::State::kActive);
  // A retired carrier accepts nothing; a new circuit grooms a new one.
  std::optional<ConnectionId> id2;
  portal.connect(site_i, site_iv, rates::k1G, ProtectionMode::kUnprotected,
                 [&](Result<ConnectionId> r) {
                   if (r.ok()) id2 = r.value();
                 });
  engine.run();
  ASSERT_TRUE(id2.has_value());
  EXPECT_EQ(controller.carriers_groomed(), 2u);
}

TEST(Portal, BundleUnwindsOnPartialFailure) {
  // Constrain the plant so the wavelength part of a 12G bundle succeeds
  // but the ODU parts cannot (no OTN layer at all): the bundle must fail
  // as a unit and release the wavelength it already built.
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  TestbedScenario s(92, cfg);
  std::optional<Result<BundleId>> result;
  s.portal->connect_bundle(s.site_i, s.site_iv, DataRate::gbps(12),
                           ProtectionMode::kUnprotected,
                           [&](Result<BundleId> r) { result = std::move(r); });
  s.engine.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  // Everything rolled back.
  EXPECT_EQ(s.controller->active_connections(), 0u);
  EXPECT_EQ(s.model->roadm_at(s.topo.i).active_uses(), 0u);
  EXPECT_EQ(s.model->nte(s.site_i).ports_in_use(), 0u);
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
}

TEST(FortyGig, ReachIsShorterAtFortyGig) {
  // On the backbone, the same long route needs more regens at 40G.
  sim::Engine engine(93);
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.ots_40g_per_node = 2;
  cfg.regens_per_node = 6;
  cfg.regens_40g_per_node = 6;
  NetworkModel model(&engine, topology::us_backbone(), cfg);
  Inventory inv(&model);
  RwaEngine rwa(&model, &inv, RwaEngine::Params{});
  const auto& g = model.graph();
  const auto sea = *g.find_node("Seattle");
  const auto cp = *g.find_node("CollegePark");
  const auto p10 = rwa.plan(sea, cp, rates::k10G);
  const auto p40 = rwa.plan(sea, cp, rates::k40G);
  ASSERT_TRUE(p10.ok()) << p10.error();
  ASSERT_TRUE(p40.ok()) << p40.error();
  EXPECT_GE(p40.value().segments.size(), p10.value().segments.size());
  // 40G plans use 40G regens only.
  for (const RegenId r : p40.value().regens)
    EXPECT_EQ(model.regen(r).line_rate(), rates::k40G);
}

TEST(Srlg, SiblingLookup) {
  topology::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  const auto l1 = g.add_link(a, b, Distance::km(10));
  const auto l2 = g.add_link(a, c, Distance::km(10));
  const auto l3 = g.add_link(c, b, Distance::km(10));
  EXPECT_EQ(g.srlg_siblings(l1), (std::vector<LinkId>{l1}));  // no group
  g.set_srlg(l1, 7);
  g.set_srlg(l2, 7);
  const auto sib = g.srlg_siblings(l1);
  EXPECT_EQ(sib.size(), 2u);
  EXPECT_EQ(g.srlg_siblings(l3), (std::vector<LinkId>{l3}));
}

TEST(Srlg, OnePlusOneStandbyAvoidsSharedConduit) {
  // a--b directly (L1); a-c-b whose first hop shares a conduit with L1;
  // a-d-b fully independent. The 1+1 standby must take the a-d-b route —
  // link-disjointness alone would have accepted a-c-b.
  sim::Engine engine(140);
  topology::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  const auto d = g.add_node("d");
  const auto l1 = g.add_link(a, b, Distance::km(50));
  const auto l_ac = g.add_link(a, c, Distance::km(60));  // shares conduit
  g.add_link(c, b, Distance::km(60));
  const auto l_ad = g.add_link(a, d, Distance::km(400));
  const auto l_db = g.add_link(d, b, Distance::km(400));
  g.set_srlg(l1, 1);
  g.set_srlg(l_ac, 1);

  NetworkModel::Config cfg;
  cfg.with_otn = false;
  NetworkModel model(&engine, std::move(g), cfg);
  const auto sa = model.add_customer_site(CustomerId{1}, "A", a).nte;
  const auto sb = model.add_customer_site(CustomerId{1}, "B", b).nte;
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));

  std::optional<ConnectionId> id;
  portal.connect(sa, sb, rates::k10G, ProtectionMode::kOnePlusOne,
                 [&](Result<ConnectionId> r) {
                   if (r.ok()) id = r.value();
                 });
  engine.run();
  ASSERT_TRUE(id.has_value());
  const auto& conn = controller.connection(*id);
  ASSERT_TRUE(conn.standby.has_value());
  EXPECT_EQ(conn.plan.path.links, (std::vector<LinkId>{l1}));
  // Standby took the long but conduit-independent route.
  EXPECT_TRUE(conn.standby->path.uses_link(l_ad));
  EXPECT_TRUE(conn.standby->path.uses_link(l_db));
  EXPECT_FALSE(conn.standby->path.uses_link(l_ac));
}

TEST(Srlg, BridgeAndRollAvoidsSharedConduit) {
  sim::Engine engine(141);
  topology::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  const auto d = g.add_node("d");
  const auto l1 = g.add_link(a, b, Distance::km(50));
  const auto l_ac = g.add_link(a, c, Distance::km(60));
  g.add_link(c, b, Distance::km(60));
  const auto l_ad = g.add_link(a, d, Distance::km(400));
  g.add_link(d, b, Distance::km(400));
  g.set_srlg(l1, 3);
  g.set_srlg(l_ac, 3);

  NetworkModel::Config cfg;
  cfg.with_otn = false;
  NetworkModel model(&engine, std::move(g), cfg);
  const auto sa = model.add_customer_site(CustomerId{1}, "A", a).nte;
  const auto sb = model.add_customer_site(CustomerId{1}, "B", b).nte;
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));
  std::optional<ConnectionId> id;
  portal.connect(sa, sb, rates::k10G, ProtectionMode::kRestorable,
                 [&](Result<ConnectionId> r) {
                   if (r.ok()) id = r.value();
                 });
  engine.run();
  ASSERT_TRUE(id.has_value());
  std::optional<Status> rolled;
  controller.bridge_and_roll(*id, Exclusions{},
                             [&](Status st) { rolled = st; });
  engine.run();
  ASSERT_TRUE(rolled && rolled->ok()) << rolled->error().message();
  const auto& conn = controller.connection(*id);
  EXPECT_FALSE(conn.plan.path.uses_link(l_ac));  // conduit-mate shunned
  EXPECT_TRUE(conn.plan.path.uses_link(l_ad));
}

}  // namespace
}  // namespace griphon::core
