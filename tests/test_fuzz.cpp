// Robustness / fuzz-style property tests.
//
// The control protocol and the EMS front-end must survive arbitrary bytes
// from the DCN (truncated frames, flipped bits, garbage) without crashing
// or corrupting state; decode either succeeds or returns a clean error.
#include <gtest/gtest.h>

#include "dwdm/transponder.hpp"
#include "ems/ems_server.hpp"
#include "proto/client.hpp"
#include "proto/messages.hpp"

namespace griphon::proto {
namespace {

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 96));
    Bytes bytes(len);
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto frame = decode_frame(bytes);  // must not crash or UB
    if (frame.ok()) {
      // Decoding random bytes as a frame is astronomically unlikely given
      // the 32-bit magic; if it happens the content must still be typed.
      (void)type_of(frame.value().message);
    }
  }
}

TEST_P(DecodeFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(GetParam() + 1000);
  const Bytes valid = encode_frame(
      42, Message{RoadmAddDrop{RoadmId{1}, PortId{6}, 1, 33, true}});
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes bytes = valid;
    // Flip 1-4 random bytes.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < flips; ++i) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(bytes.size()) - 1));
      bytes[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    // Sometimes truncate or extend too.
    if (rng.chance(0.3))
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(bytes.size()))));
    if (rng.chance(0.2)) bytes.push_back(0);
    (void)decode_frame(bytes);
  }
}

TEST_P(DecodeFuzz, TruncationsOfEveryPrefixAreClean) {
  Rng rng(GetParam());
  const Bytes valid = encode_frame(
      7, Message{AlarmEvent{Alarm{AlarmId{1}, AlarmType::kLos, seconds(1),
                                  "roadm/1", NodeId{1}, LinkId{2}, 3,
                                  std::nullopt, "x"}}});
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes bytes(valid.begin(), valid.begin() + static_cast<long>(cut));
    const auto frame = decode_frame(bytes);
    EXPECT_FALSE(frame.ok());  // every strict prefix must be rejected
  }
  EXPECT_TRUE(decode_frame(valid).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3));

TEST(EmsFuzz, GarbageFramesLeaveServerOperational) {
  sim::Engine engine(4);
  ControlChannel chan(&engine, ControlChannel::Params{});
  ems::EmsServer server(&engine, &chan.b(),
                        ems::EmsLatencyProfile::fast_hardware(), "ems");
  dwdm::Transponder ot(TransponderId{0}, NodeId{0}, rates::k10G);
  server.manage_ot(&ot);
  RequestClient client(&engine, &chan.a(), RequestClient::Params{});

  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Bytes junk(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    chan.a().send(std::move(junk));
  }
  engine.run();
  EXPECT_EQ(server.commands_executed(), 0u);

  // The server still works after the storm.
  std::optional<Response> resp;
  client.request(Message{OtTune{TransponderId{0}, 5}},
                 [&](Result<Response> r) { resp = r.value(); });
  engine.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(ot.channel(), 5);
}

TEST(EmsFuzz, LossyChannelEventuallyConverges) {
  // A realistic bad DCN day: 20% loss both ways; a batch of commands must
  // all complete exactly once (dedup) despite retransmissions.
  sim::Engine engine(11);
  ControlChannel::Params cp;
  cp.loss_probability = 0.2;
  ControlChannel chan(&engine, cp);
  ems::EmsServer server(&engine, &chan.b(),
                        ems::EmsLatencyProfile::fast_hardware(), "ems");
  std::vector<std::unique_ptr<dwdm::Transponder>> ots;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ots.push_back(std::make_unique<dwdm::Transponder>(TransponderId{i},
                                                      NodeId{0},
                                                      rates::k10G));
    server.manage_ot(ots.back().get());
  }
  RequestClient::Params rp;
  rp.timeout = milliseconds(400);
  rp.max_attempts = 20;
  RequestClient client(&engine, &chan.a(), rp);
  int ok = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    client.request(Message{OtTune{TransponderId{i},
                                  static_cast<std::int32_t>(i)}},
                   [&](Result<Response> r) {
                     if (r.ok() && r.value().ok()) ++ok;
                   });
  engine.run();
  EXPECT_EQ(ok, 16);
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_EQ(ots[i]->channel(), static_cast<std::int32_t>(i));
}

}  // namespace
}  // namespace griphon::proto
