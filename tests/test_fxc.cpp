// Unit tests for the fiber cross-connect.
#include <gtest/gtest.h>

#include "fxc/fxc.hpp"

namespace griphon::fxc {
namespace {

class FxcTest : public ::testing::Test {
 protected:
  FxcTest() : fxc_(FxcId{1}, NodeId{0}, 8) {}
  Fxc fxc_;
};

TEST_F(FxcTest, StartsEmpty) {
  EXPECT_EQ(fxc_.port_count(), 8u);
  EXPECT_EQ(fxc_.active_connections(), 0u);
  EXPECT_FALSE(fxc_.connected(PortId{0}));
}

TEST_F(FxcTest, ConnectAndPeer) {
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{5}).ok());
  EXPECT_EQ(fxc_.active_connections(), 1u);
  EXPECT_EQ(fxc_.peer(PortId{0}), PortId{5});
  EXPECT_EQ(fxc_.peer(PortId{5}), PortId{0});
  EXPECT_FALSE(fxc_.peer(PortId{1}).has_value());
}

TEST_F(FxcTest, BusyPortRejected) {
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{5}).ok());
  EXPECT_EQ(fxc_.connect(PortId{0}, PortId{1}).error().code(),
            ErrorCode::kBusy);
  EXPECT_EQ(fxc_.connect(PortId{2}, PortId{5}).error().code(),
            ErrorCode::kBusy);
}

TEST_F(FxcTest, LoopbackAndUnknownPortRejected) {
  EXPECT_EQ(fxc_.connect(PortId{3}, PortId{3}).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fxc_.connect(PortId{0}, PortId{99}).error().code(),
            ErrorCode::kNotFound);
}

TEST_F(FxcTest, DisconnectEitherEnd) {
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{5}).ok());
  ASSERT_TRUE(fxc_.disconnect(PortId{5}).ok());  // by the far end
  EXPECT_FALSE(fxc_.connected(PortId{0}));
  EXPECT_EQ(fxc_.active_connections(), 0u);
  EXPECT_EQ(fxc_.disconnect(PortId{0}).error().code(), ErrorCode::kConflict);
}

TEST_F(FxcTest, StrictlyNonBlocking) {
  // Any free-to-free pairing must succeed regardless of existing state.
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{1}).ok());
  ASSERT_TRUE(fxc_.connect(PortId{2}, PortId{3}).ok());
  ASSERT_TRUE(fxc_.connect(PortId{4}, PortId{7}).ok());
  ASSERT_TRUE(fxc_.connect(PortId{5}, PortId{6}).ok());
  EXPECT_EQ(fxc_.active_connections(), 4u);
}

TEST_F(FxcTest, WiringLookup) {
  fxc_.wire(PortId{2},
            Wiring{Wiring::Kind::kTransponderClient, /*device=*/7, 0});
  fxc_.wire(PortId{3}, Wiring{Wiring::Kind::kCustomerAccess, 4, 1});
  EXPECT_EQ(fxc_.wiring(PortId{2}).kind, Wiring::Kind::kTransponderClient);
  const auto p = fxc_.port_for(Wiring::Kind::kTransponderClient, 7, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, PortId{2});
  EXPECT_FALSE(
      fxc_.port_for(Wiring::Kind::kTransponderClient, 8, 0).has_value());
  EXPECT_EQ(fxc_.wiring(PortId{0}).kind, Wiring::Kind::kUnwired);
}

TEST_F(FxcTest, ReconnectAfterDisconnect) {
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{1}).ok());
  ASSERT_TRUE(fxc_.disconnect(PortId{0}).ok());
  ASSERT_TRUE(fxc_.connect(PortId{0}, PortId{2}).ok());
  EXPECT_EQ(fxc_.peer(PortId{0}), PortId{2});
  EXPECT_FALSE(fxc_.connected(PortId{1}));
}

TEST(Fxc, ZeroPortsThrows) {
  EXPECT_THROW(Fxc(FxcId{1}, NodeId{0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace griphon::fxc
