// Equivalence property tests for the indexed Inventory.
//
// The inventory's indexed fast paths (per-link reservation ChannelSets,
// per-site OT/regen pools, the cached per-channel usage table) must agree
// with the brute-force definitions they replaced: full scans over the
// reservation list, the global OT/regen vectors and every link. The
// references below are verbatim re-implementations of the pre-index logic;
// a seeded random reserve/release/configure workload checks agreement
// after every mutation.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <utility>

#include "common/rng.hpp"
#include "core/inventory.hpp"
#include "core/network_model.hpp"
#include "topology/builders.hpp"

namespace griphon::core {
namespace {

bool ref_ot_is_free(const dwdm::Transponder& ot) {
  return ot.state() == dwdm::Transponder::State::kIdle ||
         ot.state() == dwdm::Transponder::State::kTuned;
}

/// Brute-force mirror of the reservation overlay, kept as the flat
/// containers the seed implementation scanned.
struct ReferenceInventory {
  const NetworkModel* model;
  std::set<std::pair<LinkId, dwdm::ChannelIndex>> reserved_channels;
  std::set<TransponderId> reserved_ots;
  std::set<RegenId> reserved_regens;

  dwdm::ChannelSet available_on_link(LinkId link) const {
    if (model->link_failed(link)) return {};
    const auto& l = model->graph().link(link);
    const auto& ra = model->roadm_at(l.a);
    const auto& rb = model->roadm_at(l.b);
    const auto da = ra.degree_for(link);
    const auto db = rb.degree_for(link);
    if (!da || !db) return {};
    dwdm::ChannelSet set = ra.free_channels(*da);
    set.intersect(rb.free_channels(*db));
    for (const auto& [rlink, ch] : reserved_channels)
      if (rlink == link) set.remove(ch);
    return set;
  }

  std::optional<TransponderId> find_free_ot(NodeId node,
                                            DataRate min_rate) const {
    std::optional<TransponderId> best;
    DataRate best_rate{};
    for (const auto& ot : model->ots()) {
      if (ot->site() != node) continue;
      if (!ref_ot_is_free(*ot)) continue;
      if (ot->line_rate() < min_rate) continue;
      if (reserved_ots.contains(ot->id())) continue;
      if (!best || ot->line_rate() < best_rate) {
        best = ot->id();
        best_rate = ot->line_rate();
      }
    }
    return best;
  }

  std::size_t free_ot_count(NodeId node, DataRate min_rate) const {
    std::size_t n = 0;
    for (const auto& ot : model->ots()) {
      if (ot->site() == node && ref_ot_is_free(*ot) &&
          ot->line_rate() >= min_rate && !reserved_ots.contains(ot->id()))
        ++n;
    }
    return n;
  }

  std::optional<RegenId> find_free_regen(
      NodeId node, DataRate min_rate,
      const std::set<RegenId>& exclude = {}) const {
    for (const auto& regen : model->regens()) {
      if (regen->site() != node) continue;
      if (regen->in_use()) continue;
      if (regen->line_rate() < min_rate) continue;
      if (reserved_regens.contains(regen->id())) continue;
      if (exclude.contains(regen->id())) continue;
      return regen->id();
    }
    return std::nullopt;
  }

  std::size_t channel_usage(dwdm::ChannelIndex ch) const {
    std::size_t n = 0;
    for (const auto& link : model->graph().links()) {
      const auto& roadm = model->roadm_at(link.a);
      const auto degree = roadm.degree_for(link.id);
      if (degree && roadm.channel_in_use(*degree, ch)) ++n;
    }
    return n;
  }

  std::size_t reservations() const {
    return reserved_channels.size() + reserved_ots.size() +
           reserved_regens.size();
  }
};

struct EquivFixture {
  explicit EquivFixture(topology::Graph graph, std::uint64_t seed)
      : engine(seed),
        model(&engine, std::move(graph), config()),
        inventory(&model),
        reference{&model, {}, {}, {}},
        rng(seed) {}

  static NetworkModel::Config config() {
    NetworkModel::Config c;
    c.channels = 16;
    c.ots_per_node = 3;
    c.ots_40g_per_node = 1;
    c.regens_per_node = 2;
    c.with_otn = false;
    return c;
  }

  LinkId random_link() {
    return LinkId{static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(model.graph().links().size()) - 1))};
  }
  NodeId random_node() {
    return NodeId{static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(model.graph().nodes().size()) - 1))};
  }
  dwdm::ChannelIndex random_channel() {
    return static_cast<dwdm::ChannelIndex>(rng.uniform_int(
        0, static_cast<std::int64_t>(model.grid().count()) - 1));
  }

  /// One random mutation applied to both the indexed inventory and the
  /// brute-force reference (and, for device-state ops, to the plant).
  void step() {
    switch (rng.uniform_int(0, 11)) {
      case 0: {  // reserve a channel
        const LinkId l = random_link();
        const dwdm::ChannelIndex ch = random_channel();
        inventory.reserve_channel(l, ch);
        reference.reserved_channels.emplace(l, ch);
        break;
      }
      case 1: {  // release a channel (possibly not reserved)
        const LinkId l = random_link();
        const dwdm::ChannelIndex ch = random_channel();
        inventory.release_channel(l, ch);
        reference.reserved_channels.erase({l, ch});
        break;
      }
      case 2: {  // reserve an OT
        const auto id = TransponderId{static_cast<std::uint64_t>(
            rng.uniform_int(
                0, static_cast<std::int64_t>(model.ots().size()) - 1))};
        inventory.reserve_ot(id);
        reference.reserved_ots.insert(id);
        break;
      }
      case 3: {  // release an OT
        const auto id = TransponderId{static_cast<std::uint64_t>(
            rng.uniform_int(
                0, static_cast<std::int64_t>(model.ots().size()) - 1))};
        inventory.release_ot(id);
        reference.reserved_ots.erase(id);
        break;
      }
      case 4: {  // reserve a regen
        const auto id = RegenId{static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.regens().size()) - 1))};
        inventory.reserve_regen(id);
        reference.reserved_regens.insert(id);
        break;
      }
      case 5: {  // release a regen
        const auto id = RegenId{static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.regens().size()) - 1))};
        inventory.release_regen(id);
        reference.reserved_regens.erase(id);
        break;
      }
      case 6: {  // device state: express cross-connect (may refuse; fine)
        const LinkId l = random_link();
        const auto& link = model.graph().link(l);
        auto& roadm = model.roadm_at(link.a);
        if (roadm.degree_count() < 2) break;
        const auto in = roadm.degree_for(l);
        const auto out = static_cast<dwdm::DegreeIndex>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(roadm.degree_count()) -
                                1));
        if (in && *in != out)
          (void)roadm.configure_express(random_channel(), *in, out);
        break;
      }
      case 7: {  // device state: release an express cross-connect
        const LinkId l = random_link();
        const auto& link = model.graph().link(l);
        auto& roadm = model.roadm_at(link.a);
        const auto in = roadm.degree_for(l);
        if (!in) break;
        const auto used = roadm.used_channels(*in).to_vector();
        if (used.empty()) break;
        const auto ch = used[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(used.size()) - 1))];
        for (std::size_t d = 0; d < roadm.degree_count(); ++d)
          if (static_cast<dwdm::DegreeIndex>(d) != *in &&
              roadm
                  .release_express(ch, *in,
                                   static_cast<dwdm::DegreeIndex>(d))
                  .ok())
            break;
        break;
      }
      case 8: {  // device state: tune/activate an OT
        const auto id = TransponderId{static_cast<std::uint64_t>(
            rng.uniform_int(
                0, static_cast<std::int64_t>(model.ots().size()) - 1))};
        auto& ot = model.ot(id);
        if (ot.state() == dwdm::Transponder::State::kIdle)
          (void)ot.tune(random_channel());
        else if (ot.state() == dwdm::Transponder::State::kTuned)
          (void)ot.activate();
        break;
      }
      case 9: {  // device state: return an OT to the pool
        const auto id = TransponderId{static_cast<std::uint64_t>(
            rng.uniform_int(
                0, static_cast<std::int64_t>(model.ots().size()) - 1))};
        (void)model.ot(id).reset();
        break;
      }
      case 10: {  // device state: engage a regen (drives the O(1) free bits)
        const auto id = RegenId{static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.regens().size()) - 1))};
        auto& rg = model.regen(id);
        if (!rg.in_use())
          (void)rg.engage(random_channel(), random_channel());
        break;
      }
      case 11: {  // device state: release a regen back to the pool
        const auto id = RegenId{static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.regens().size()) - 1))};
        (void)model.regen(id).release();
        break;
      }
      default:
        break;
    }
  }

  /// Full agreement check across every query the RWA hot path makes.
  void check_all() {
    ASSERT_EQ(inventory.reservations(), reference.reservations());
    for (const auto& link : model.graph().links()) {
      ASSERT_EQ(inventory.available_on_link(link.id),
                reference.available_on_link(link.id))
          << "available_on_link diverged on link " << link.id.value();
      for (dwdm::ChannelIndex ch = 0;
           ch < static_cast<dwdm::ChannelIndex>(model.grid().count()); ++ch)
        ASSERT_EQ(inventory.channel_reserved(link.id, ch),
                  reference.reserved_channels.contains({link.id, ch}));
    }
    for (dwdm::ChannelIndex ch = 0;
         ch < static_cast<dwdm::ChannelIndex>(model.grid().count()); ++ch)
      ASSERT_EQ(inventory.channel_usage(ch), reference.channel_usage(ch))
          << "channel_usage diverged on channel " << ch;
    for (const auto& node : model.graph().nodes()) {
      for (const DataRate rate : {rates::k10G, rates::k40G}) {
        ASSERT_EQ(inventory.find_free_ot(node.id, rate),
                  reference.find_free_ot(node.id, rate))
            << "find_free_ot diverged at node " << node.id.value();
        ASSERT_EQ(inventory.free_ot_count(node.id, rate),
                  reference.free_ot_count(node.id, rate));
        ASSERT_EQ(inventory.find_free_regen(node.id, rate),
                  reference.find_free_regen(node.id, rate));
      }
      // Exclusion-aware regen lookup (the RWA multi-boundary case).
      const auto first = inventory.find_free_regen(node.id, rates::k10G);
      if (first) {
        const std::set<RegenId> excl{*first};
        ASSERT_EQ(inventory.find_free_regen(node.id, rates::k10G, excl),
                  reference.find_free_regen(node.id, rates::k10G, excl));
      }
    }
  }

  sim::Engine engine;
  NetworkModel model;
  Inventory inventory;
  ReferenceInventory reference;
  Rng rng;
};

void run_property(topology::Graph graph, std::uint64_t seed,
                  std::size_t operations, std::size_t check_every) {
  EquivFixture f(std::move(graph), seed);
  f.check_all();
  if (::testing::Test::HasFatalFailure()) return;
  for (std::size_t op = 0; op < operations; ++op) {
    f.step();
    if (op % check_every == 0) {
      f.check_all();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  f.check_all();
}

TEST(InventoryEquivalence, PaperTestbed10kOps) {
  run_property(topology::paper_testbed().graph, 42, 10000, 97);
}

TEST(InventoryEquivalence, UsBackbone10kOps) {
  run_property(topology::us_backbone(), 1337, 10000, 211);
}

TEST(InventoryEquivalence, RandomMeshManySeeds) {
  for (const std::uint64_t seed : {7u, 19u, 23u}) {
    Rng rng(seed);
    run_property(topology::random_mesh(12, 3.0, rng), seed, 4000, 173);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Link failure interacts with availability (failed link -> empty set);
// make sure the indexed path honors it identically.
TEST(InventoryEquivalence, AgreesAcrossLinkFailures) {
  EquivFixture f(topology::paper_testbed().graph, 5);
  for (std::size_t op = 0; op < 2000; ++op) {
    f.step();
    if (op % 200 == 0) {
      const LinkId l = f.random_link();
      if (f.model.link_failed(l))
        f.model.repair_link(l);
      else
        f.model.fail_link(l);
    }
    if (op % 101 == 0) {
      f.check_all();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  f.check_all();
}

}  // namespace
}  // namespace griphon::core
