// Observability v2 (DESIGN.md §14): Chrome-trace export, gauge sampler,
// event log, and SLO alerting with hysteresis.
//
// The export tests verify the Chrome Trace Event invariants that
// tools/validate_trace.py enforces on CI artifacts — matched B/E pairs
// per lane, monotonic timestamps, incomplete-span flagging — plus
// byte-determinism: two identical seeded runs must export identical
// bytes. The SLO regression test drives a chaos-induced restoration-
// budget violation through alert fire and clear.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "chaos/fault_plan.hpp"
#include "core/observability.hpp"
#include "core/scenario.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace griphon::telemetry {
namespace {

constexpr auto npos = std::string::npos;

// Count occurrences of a literal substring.
std::size_t count_of(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != npos;
       at = text.find(needle, at + needle.size()))
    ++n;
  return n;
}

// --- TimeSeries -------------------------------------------------------------

TEST(TimeSeries, RollupsSurviveRingEviction) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.push(seconds(i), i);
  EXPECT_EQ(ts.points().size(), 4u);
  EXPECT_EQ(ts.dropped_count(), 6u);
  const auto r = ts.rollup();
  EXPECT_EQ(r.count, 10u);       // every sample ever pushed
  EXPECT_DOUBLE_EQ(r.min, 0.0);  // including evicted ones
  EXPECT_DOUBLE_EQ(r.max, 9.0);
  EXPECT_DOUBLE_EQ(r.mean, 4.5);
  EXPECT_DOUBLE_EQ(r.last, 9.0);
}

TEST(TimeSeries, WindowFiltersRetainedPoints) {
  TimeSeries ts(16);
  for (int i = 0; i < 8; ++i) ts.push(seconds(i), i * 10);
  const auto w = ts.window(seconds(2), seconds(4));
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.front(), 20.0);
  EXPECT_DOUBLE_EQ(w.back(), 40.0);
}

TEST(TimeSeries, SparklineScalesToRetainedRange) {
  TimeSeries ts(8);
  for (int i = 0; i < 8; ++i) ts.push(seconds(i), i);
  const std::string s = ts.spark(8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_NE(s.front(), s.back());  // ramp, not flat
  TimeSeries flat(8);
  flat.push(seconds(0), 5);
  flat.push(seconds(1), 5);
  const std::string f = flat.spark(8);
  EXPECT_EQ(f[0], f[1]);  // flat series render uniformly
}

// --- EventLog ---------------------------------------------------------------

TEST(EventLog, RingBoundsAndCountsDrops) {
  EventLog log(3);
  for (int i = 0; i < 7; ++i)
    log.log(seconds(i), Severity::kInfo, "lifecycle", "controller",
            "e" + std::to_string(i), static_cast<CorrelationTag>(i));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped_count(), 4u);
  EXPECT_EQ(log.events().front().message, "e4");  // newest retained
  EXPECT_EQ(log.events().back().message, "e6");
  EXPECT_NE(log.to_json().find("\"dropped\":4"), npos);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped_count(), 0u);
}

TEST(EventLog, SeverityAndCategoryFilters) {
  EventLog log;
  log.log(seconds(1), Severity::kDebug, "lifecycle", "controller", "a");
  log.log(seconds(2), Severity::kWarn, "breaker", "roadm-ems", "b");
  log.log(seconds(3), Severity::kError, "slo", "slo-monitor", "c");
  EXPECT_EQ(log.at_least(Severity::kWarn).size(), 2u);
  EXPECT_EQ(log.at_least(Severity::kError).size(), 1u);
  ASSERT_EQ(log.for_category("breaker").size(), 1u);
  EXPECT_EQ(log.for_category("breaker")[0]->message, "b");
}

TEST(EventLog, TelemetryFacadeStampsSimTime) {
  sim::Engine engine;
  Telemetry tel(&engine);
  engine.schedule(seconds(42), [&] {
    tel.event(Severity::kWarn, "fault", "chaos", "ot laser died", 7);
  });
  engine.run();
  ASSERT_EQ(tel.events().size(), 1u);
  EXPECT_EQ(tel.events().events().front().when, seconds(42));
  EXPECT_EQ(tel.events().events().front().tag, 7u);
}

// --- GaugeSampler -----------------------------------------------------------

TEST(GaugeSampler, SamplesOnSimClockCadence) {
  sim::Engine engine;
  GaugeSampler sampler(&engine, nullptr, 64);
  double level = 1.0;
  sampler.add_probe("test_level", "count", [&] { return level; });
  sampler.start(seconds(10));  // samples immediately, then every 10 s
  engine.schedule(seconds(25), [&] { level = 5.0; });
  engine.run_until(seconds(45));
  sampler.stop();
  // Ticks at t = 0, 10, 20, 30, 40.
  EXPECT_EQ(sampler.tick_count(), 5u);
  const TimeSeries* ts = sampler.series("test_level");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->points().size(), 5u);
  EXPECT_DOUBLE_EQ(ts->points()[2].value, 1.0);  // t=20, before the bump
  EXPECT_DOUBLE_EQ(ts->points()[3].value, 5.0);  // t=30, after
  // Stopped: no pending event keeps the engine alive.
  engine.run();
  EXPECT_EQ(sampler.tick_count(), 5u);
}

TEST(GaugeSampler, NonFiniteProbeValuesClampToZero) {
  sim::Engine engine;
  GaugeSampler sampler(&engine);
  sampler.add_probe("bad_probe", "ratio",
                    [] { return std::nan(""); });
  sampler.sample_now();
  ASSERT_EQ(sampler.series("bad_probe")->points().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series("bad_probe")->points()[0].value, 0.0);
}

TEST(GaugeSampler, CsvIsWideWithAlignedRows) {
  sim::Engine engine;
  GaugeSampler sampler(&engine);
  sampler.add_probe("a_gauge", "count", [] { return 1.0; });
  sampler.add_probe("b_gauge", "gbps", [] { return 2.5; });
  sampler.sample_now();
  engine.schedule(seconds(5), [&] { sampler.sample_now(); });
  engine.run();
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("t_seconds,a_gauge,b_gauge"), npos);
  EXPECT_EQ(count_of(csv, "\n"), 3u);  // header + 2 rows
  EXPECT_NE(csv.find("5.000000,1"), npos);
}

TEST(GaugeSampler, RegistersSelfMetrics) {
  sim::Engine engine;
  Telemetry tel(&engine);
  GaugeSampler sampler(&engine, &tel);
  sampler.add_probe("x_probe", "count", [] { return 0.0; });
  sampler.start(seconds(1));
  engine.run_until(seconds(3));
  sampler.stop();
  EXPECT_NE(tel.metrics().find_gauge("griphon_sampler_probes_registered"),
            nullptr);
  const auto* ticks =
      tel.metrics().find_counter("griphon_sampler_ticks_total");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GE(ticks->value(), 3.0);
  EXPECT_TRUE(tel.metrics().invalid_names().empty());
}

// --- SpanTracer edge cases (satellite: export-adjacent semantics) -----------

TEST(SpanTracer, RetroactiveRecordMayOverlapOpenSpan) {
  SpanTracer t;
  const SpanId root = t.start("restoration", "controller", 3, 0, seconds(10));
  // Retroactive child recorded while the root is still open, overlapping
  // the root's live window (detect = cut -> first alarm, known only in
  // hindsight).
  const SpanId detect = t.record("detect", "failure-manager", 3, root,
                                 seconds(8), seconds(12), true, "link 2");
  const Span* d = t.find(detect);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->done);
  EXPECT_LT(d->start, t.find(root)->start);  // starts before its parent
  EXPECT_EQ(t.open_count(), 1u);
  t.end(root, seconds(40));
  EXPECT_EQ(t.open_count(), 0u);
  // The exporter gives the early-starting child its own lane rather than
  // breaking B/E nesting under the root.
  const std::string json =
      TraceExporter().to_json(t, seconds(40), nullptr);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(json.find("incomplete"), npos);
}

TEST(SpanTracer, OpenAtExportSpansAreFlaggedIncomplete) {
  SpanTracer t;
  t.start("connection_setup", "controller", 1, 0, seconds(0));
  const std::string json = TraceExporter().to_json(t, seconds(30), nullptr);
  // Closed at the export instant, flagged, still a matched pair.
  EXPECT_NE(json.find("\"incomplete\":true"), npos);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 1u);
  EXPECT_NE(json.find("\"ts\":30000000"), npos);  // E at export_now
}

// --- TraceExporter ----------------------------------------------------------

// One instrumented setup; returns the exported trace JSON.
std::string traced_setup(std::uint64_t seed) {
  core::TestbedScenario s(seed);
  Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  EXPECT_TRUE(id.has_value());
  const std::string json = TraceExporter().to_json(tel);
  s.model->attach_telemetry(nullptr);
  return json;
}

TEST(TraceExporter, EmitsBalancedPairsWithCorrelationArgs) {
  const std::string json = traced_setup(99);
  EXPECT_NE(json.find("{\"traceEvents\":["), npos);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), count_of(json, "\"ph\":\"E\""));
  EXPECT_GT(count_of(json, "\"ph\":\"B\""), 4u);  // root + per-command spans
  EXPECT_NE(json.find("\"name\":\"connection_setup\""), npos);
  EXPECT_NE(json.find("\"name\":\"path_computation\""), npos);
  // Correlation: tag and derived connection id ride in args.
  EXPECT_NE(json.find("\"tag\":1"), npos);
  EXPECT_NE(json.find("\"connection\":0"), npos);
  // Metadata names the actor processes.
  EXPECT_NE(json.find("\"process_name\""), npos);
  EXPECT_NE(json.find("\"controller\""), npos);
  // A finished setup exports no incomplete spans.
  EXPECT_EQ(json.find("incomplete"), npos);
}

TEST(TraceExporter, ExportIsByteDeterministicAcrossRuns) {
  const std::string a = traced_setup(4242);
  const std::string b = traced_setup(4242);
  EXPECT_EQ(a, b);  // byte-identical, not just equivalent
  const std::string c = traced_setup(4243);
  EXPECT_EQ(count_of(c, "\"ph\":\"B\""), count_of(c, "\"ph\":\"E\""));
}

TEST(TraceExporter, EventLogEntriesBecomeInstantEvents) {
  sim::Engine engine;
  Telemetry tel(&engine);
  tel.spans().record("connection_setup", "controller", 1, 0, seconds(0),
                     seconds(20));
  engine.schedule(seconds(5), [&] {
    tel.event(Severity::kWarn, "fault", "chaos", "injected nack", 1);
  });
  engine.run();
  const std::string json = TraceExporter().to_json(tel);
  EXPECT_EQ(count_of(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"s\":\"p\""), npos);  // process scope
  EXPECT_NE(json.find("injected nack"), npos);
  // Disabled via options: instants disappear, spans stay.
  TraceExporter::Options opt;
  opt.include_instants = false;
  const std::string bare = TraceExporter(opt).to_json(tel);
  EXPECT_EQ(count_of(bare, "\"ph\":\"i\""), 0u);
  EXPECT_EQ(count_of(bare, "\"ph\":\"B\""), 1u);
}

// --- SloMonitor -------------------------------------------------------------

TEST(SloMonitor, HysteresisGatesFireAndClear) {
  sim::Engine engine;
  Telemetry tel(&engine);
  SloMonitor slo(&engine, &tel);
  double value = 0.0;
  Objective obj;
  obj.name = "test_objective";
  obj.description = "value stays under 10";
  obj.value = [&] { return value; };
  obj.bound = 10.0;
  obj.trip_after = 3;
  obj.clear_after = 2;
  slo.add_objective(obj);

  // Two violating evaluations: streak building, no alert yet.
  value = 50.0;
  EXPECT_EQ(slo.evaluate_now(), 0u);
  EXPECT_EQ(slo.evaluate_now(), 0u);
  EXPECT_FALSE(slo.alerting("test_objective"));
  // A healthy evaluation resets the violation streak.
  value = 1.0;
  EXPECT_EQ(slo.evaluate_now(), 0u);
  value = 50.0;
  EXPECT_EQ(slo.evaluate_now(), 0u);
  EXPECT_EQ(slo.evaluate_now(), 0u);
  // Third consecutive violation: fires.
  EXPECT_EQ(slo.evaluate_now(), 1u);
  EXPECT_TRUE(slo.alerting("test_objective"));
  // One healthy evaluation is not enough to clear...
  value = 1.0;
  EXPECT_EQ(slo.evaluate_now(), 1u);
  // ...the second consecutive one clears.
  EXPECT_EQ(slo.evaluate_now(), 0u);
  EXPECT_FALSE(slo.alerting("test_objective"));

  // Fire + clear left an audit trail: slo events and metrics.
  EXPECT_EQ(tel.events().for_category("slo").size(), 2u);
  const auto* fired =
      tel.metrics().find_counter("griphon_slo_alerts_fired_total",
                                 {{"objective", "test_objective"}});
  ASSERT_NE(fired, nullptr);
  EXPECT_DOUBLE_EQ(fired->value(), 1.0);
  const auto* active =
      tel.metrics().find_gauge("griphon_slo_alert_active",
                               {{"objective", "test_objective"}});
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(), 0.0);
}

TEST(SloMonitor, NanMeansNoDataAndFreezesStreaks) {
  sim::Engine engine;
  SloMonitor slo(&engine);
  double value = 100.0;
  bool have_data = true;
  Objective obj;
  obj.name = "nan_objective";
  obj.value = [&] { return have_data ? value : std::nan(""); };
  obj.bound = 10.0;
  obj.trip_after = 2;
  slo.add_objective(obj);
  slo.evaluate_now();  // violation streak = 1
  have_data = false;
  for (int i = 0; i < 5; ++i) slo.evaluate_now();  // no-data: frozen
  EXPECT_FALSE(slo.alerting("nan_objective"));
  have_data = true;
  EXPECT_EQ(slo.evaluate_now(), 1u);  // streak resumes at 2 -> fires
}

TEST(SloMonitor, PeriodicEvaluationRidesTheSimClock) {
  sim::Engine engine;
  SloMonitor slo(&engine);
  double value = 100.0;
  Objective obj;
  obj.name = "periodic_objective";
  obj.value = [&] { return value; };
  obj.bound = 10.0;
  obj.trip_after = 3;
  slo.add_objective(obj);
  slo.start(seconds(10));
  engine.run_until(seconds(25));  // evaluations at 10, 20
  EXPECT_FALSE(slo.alerting("periodic_objective"));
  engine.run_until(seconds(35));  // third at 30: fires
  EXPECT_TRUE(slo.alerting("periodic_objective"));
  slo.stop();
  engine.run();  // no pending event survives stop()
  EXPECT_EQ(slo.active_alerts(), 1u);
}

// --- SLO regression: chaos-induced restoration-budget violation -------------

// A restorable connection's first link is cut under an armed fault plan;
// the injected EMS faults stretch restoration past the budget and the
// restoration-time SLO fires. After heal/disarm, repeated chaos-free
// fail/repair cycles pull the cumulative p95 back under budget and the
// alert clears through the same hysteresis gate.
TEST(SloRegression, RestorationBudgetViolationFiresAndClears) {
  core::TestbedScenario s(31337);
  Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  chaos::FaultInjector injector(s.model.get(),
                                chaos::FaultPlan::combined().scaled(2.0),
                                991);

  SloMonitor slo(&s.engine, &tel);
  constexpr double kBudgetSeconds = 45.0;
  Objective obj = restoration_time_objective(tel.metrics(), kBudgetSeconds);
  obj.trip_after = 2;
  obj.clear_after = 2;
  slo.add_objective(obj);

  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  const LinkId victim = s.controller->connection(*id).plan.path.links.front();

  // No restoration data yet: NaN, no alert however often we evaluate.
  EXPECT_EQ(slo.evaluate_now(), 0u);
  EXPECT_EQ(slo.evaluate_now(), 0u);

  // Chaos-stretched restoration: cut the first link with faults armed.
  injector.arm();
  s.model->fail_link(victim);
  s.engine.run_until(s.engine.now() + minutes(30));
  ASSERT_EQ(s.controller->connection(*id).state,
            core::ConnectionState::kActive);
  injector.disarm();
  injector.heal_all();
  s.model->repair_link(victim);
  s.engine.run();

  const auto* h =
      tel.metrics().find_histogram("griphon_controller_restore_seconds");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->quantile(0.95), kBudgetSeconds)
      << "chaos did not stretch restoration past the budget; pick a "
         "hotter plan or seed";

  EXPECT_EQ(slo.evaluate_now(), 0u);  // violation 1 of trip_after=2
  EXPECT_EQ(slo.evaluate_now(), 1u);  // fires
  EXPECT_TRUE(slo.alerting(obj.name));
  ASSERT_EQ(tel.events().for_category("slo").size(), 1u);
  EXPECT_EQ(tel.events().for_category("slo")[0]->severity, Severity::kError);

  // Chaos-free fail/repair cycles: each restoration is fast, and the
  // growing healthy population pulls the cumulative p95 under budget.
  for (int cycle = 0; cycle < 40 && h->quantile(0.95) > kBudgetSeconds;
       ++cycle) {
    // The previous restoration may have re-routed the connection, so cut
    // whatever its first link is now.
    const LinkId cut =
        s.controller->connection(*id).plan.path.links.front();
    s.model->fail_link(cut);
    s.engine.run();
    s.model->repair_link(cut);
    s.engine.run();
    ASSERT_EQ(s.controller->connection(*id).state,
              core::ConnectionState::kActive);
  }
  ASSERT_LE(h->quantile(0.95), kBudgetSeconds)
      << "p95 never recovered; restoration is slower than the budget "
         "even without chaos";

  EXPECT_EQ(slo.evaluate_now(), 1u);  // healthy 1 of clear_after=2
  EXPECT_TRUE(slo.alerting(obj.name));
  EXPECT_EQ(slo.evaluate_now(), 0u);  // clears
  EXPECT_FALSE(slo.alerting(obj.name));
  EXPECT_EQ(tel.events().for_category("slo").size(), 2u);
  EXPECT_TRUE(tel.metrics().invalid_names().empty());
  s.model->attach_telemetry(nullptr);
}

// --- probe packs + end-to-end dashboard pieces ------------------------------

TEST(StandardProbes, CoverPoolsQueuesBreakersAndConnections) {
  core::TestbedScenario s(7);
  Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  GaugeSampler sampler(&s.engine, &tel);
  core::install_standard_probes(sampler, *s.controller, *s.model);
  const auto names = sampler.names();
  const auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("ot_pool_free"));
  EXPECT_TRUE(has("regen_pool_free"));
  EXPECT_TRUE(has("ems_roadm_queue_depth"));
  EXPECT_TRUE(has("ems_roadm_breaker_open"));
  EXPECT_TRUE(has("connections_active"));
  EXPECT_TRUE(has("connections_blocked"));
  EXPECT_TRUE(has("route_cache_hit_rate"));

  sampler.sample_now();
  const double free0 = sampler.series("ot_pool_free")->rollup().last;
  EXPECT_GT(free0, 0.0);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iii, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  sampler.sample_now();
  EXPECT_LT(sampler.series("ot_pool_free")->rollup().last, free0);
  EXPECT_DOUBLE_EQ(sampler.series("connections_active")->rollup().last, 1.0);
  s.model->attach_telemetry(nullptr);
}

}  // namespace
}  // namespace griphon::telemetry
