// Unit tests for the OTN layer: ODU sizing, carrier slot management with
// shared-backup accounting, the switch fabric, end-to-end circuits, and
// shared-mesh restoration (incl. the autonomous restorer).
#include <gtest/gtest.h>

#include "otn/layer.hpp"
#include "otn/odu.hpp"
#include "otn/restorer.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"

namespace griphon::otn {
namespace {

TEST(Odu, SlotCounts) {
  EXPECT_EQ(slots_of(OduLevel::kOdu0), 1);
  EXPECT_EQ(slots_of(OduLevel::kOdu1), 2);
  EXPECT_EQ(slots_of(OduLevel::kOdu2), 8);
  EXPECT_EQ(slots_of(OduLevel::kOdu3), 32);
  EXPECT_EQ(slots_of(OduLevel::kOdu4), 80);
}

TEST(Odu, SlotsForRate) {
  EXPECT_EQ(slots_for_rate(rates::k1G), 1);        // 1GbE fits an ODU0
  EXPECT_EQ(slots_for_rate(rates::k2G5), 3);       // ODUflex sizing
  EXPECT_EQ(slots_for_rate(DataRate::gbps(5)), 5);
  EXPECT_EQ(slots_for_rate(rates::k10G), 9);       // 10G > 8 x 1.244G
}

TEST(Odu, LevelForRate) {
  EXPECT_EQ(level_for_rate(rates::k1G), OduLevel::kOdu0);
  EXPECT_EQ(level_for_rate(rates::kOc48), OduLevel::kOdu1);
  EXPECT_EQ(level_for_rate(rates::k10G), OduLevel::kOdu2);
  EXPECT_EQ(level_for_rate(rates::k40G), OduLevel::kOdu3);
}

TEST(Odu, CarrierSlots) {
  EXPECT_EQ(carrier_slots(rates::k10G), 8);   // OTU2
  EXPECT_EQ(carrier_slots(rates::k40G), 32);  // OTU3
  EXPECT_EQ(carrier_slots(rates::k100G), 80); // OTU4
}

TEST(Carrier, AllocateAndRelease) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G, {LinkId{0}});
  EXPECT_EQ(c.total_slots(), 8);
  auto got = c.allocate(OduCircuitId{1}, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 3u);
  EXPECT_EQ(c.allocated_slots(), 3);
  EXPECT_TRUE(c.carries(OduCircuitId{1}));
  ASSERT_TRUE(c.release(OduCircuitId{1}).ok());
  EXPECT_EQ(c.allocated_slots(), 0);
  EXPECT_EQ(c.release(OduCircuitId{1}).error().code(), ErrorCode::kConflict);
}

TEST(Carrier, ExhaustionRejected) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G, {LinkId{0}});
  ASSERT_TRUE(c.allocate(OduCircuitId{1}, 8).ok());
  EXPECT_EQ(c.allocate(OduCircuitId{2}, 1).error().code(),
            ErrorCode::kResourceExhausted);
}

TEST(Carrier, SharedBackupPoolIsWorstCaseNotSum) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G, {LinkId{9}});
  // Two circuits with DISJOINT primary risks share the reservation.
  ASSERT_TRUE(c.reserve_backup(OduCircuitId{1}, {LinkId{1}}, 4).ok());
  ASSERT_TRUE(c.reserve_backup(OduCircuitId{2}, {LinkId{2}}, 4).ok());
  EXPECT_EQ(c.shared_reserved_slots(), 4);  // max, not 8
  // A third circuit sharing risk Link1 pushes that risk to 8.
  ASSERT_TRUE(c.reserve_backup(OduCircuitId{3}, {LinkId{1}}, 4).ok());
  EXPECT_EQ(c.shared_reserved_slots(), 8);
  // Now the carrier is fully committed to backups.
  EXPECT_EQ(c.usable_free_slots(), 0);
  EXPECT_FALSE(c.can_reserve_backup({LinkId{1}}, 1));
  // A disjoint risk still fits inside the worst-case pool: that is exactly
  // the sharing that makes mesh protection cheaper than 1+1.
  EXPECT_TRUE(c.can_reserve_backup({LinkId{3}}, 1));
}

TEST(Carrier, BackupReservationInteractsWithWorking) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G, {LinkId{9}});
  ASSERT_TRUE(c.allocate(OduCircuitId{1}, 5).ok());
  EXPECT_TRUE(c.can_reserve_backup({LinkId{1}}, 3));
  EXPECT_FALSE(c.can_reserve_backup({LinkId{1}}, 4));
  ASSERT_TRUE(c.reserve_backup(OduCircuitId{2}, {LinkId{1}}, 3).ok());
  EXPECT_EQ(c.usable_free_slots(), 0);
  ASSERT_TRUE(c.release_backup(OduCircuitId{2}).ok());
  EXPECT_EQ(c.usable_free_slots(), 3);
}

TEST(Carrier, DuplicateBackupRejected) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G, {LinkId{9}});
  ASSERT_TRUE(c.reserve_backup(OduCircuitId{1}, {LinkId{1}}, 1).ok());
  EXPECT_EQ(c.reserve_backup(OduCircuitId{1}, {LinkId{2}}, 1).error().code(),
            ErrorCode::kConflict);
}

TEST(Carrier, RidesLink) {
  OtuCarrier c(CarrierId{0}, NodeId{0}, NodeId{1}, rates::k10G,
               {LinkId{3}, LinkId{4}});
  EXPECT_TRUE(c.rides_link(LinkId{3}));
  EXPECT_TRUE(c.rides_link(LinkId{4}));
  EXPECT_FALSE(c.rides_link(LinkId{5}));
}

TEST(OtnSwitch, ClientPortsAndXconnects) {
  OtnSwitch sw(OtnSwitchId{0}, NodeId{0}, 4);
  sw.attach_carrier(CarrierId{9});
  EXPECT_TRUE(sw.has_carrier(CarrierId{9}));
  auto port = sw.allocate_client_port();
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(sw.xconnect(OduCircuitId{1},
                          Endpoint{ClientEndpoint{port.value()}},
                          Endpoint{LineEndpoint{CarrierId{9}, {0, 1}}})
                  .ok());
  EXPECT_TRUE(sw.has_xconnect(OduCircuitId{1}));
  // Duplicate circuit rejected; unknown carrier rejected.
  EXPECT_EQ(sw.xconnect(OduCircuitId{1}, Endpoint{ClientEndpoint{0}},
                        Endpoint{LineEndpoint{CarrierId{9}, {2}}})
                .error()
                .code(),
            ErrorCode::kConflict);
  EXPECT_EQ(sw.xconnect(OduCircuitId{2}, Endpoint{ClientEndpoint{0}},
                        Endpoint{LineEndpoint{CarrierId{5}, {0}}})
                .error()
                .code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(sw.release_xconnect(OduCircuitId{1}).ok());
  EXPECT_FALSE(sw.has_xconnect(OduCircuitId{1}));
}

TEST(OtnSwitch, XconnectRequiresAllocatedClientPort) {
  OtnSwitch sw(OtnSwitchId{0}, NodeId{0}, 4);
  sw.attach_carrier(CarrierId{1});
  EXPECT_EQ(sw.xconnect(OduCircuitId{1}, Endpoint{ClientEndpoint{2}},
                        Endpoint{LineEndpoint{CarrierId{1}, {0}}})
                .error()
                .code(),
            ErrorCode::kConflict);
}

/// Testbed-shaped OTN layer: switches everywhere, one 10G carrier per link.
struct LayerFixture {
  topology::Testbed t = topology::paper_testbed();
  OtnLayer layer{&t.graph};
  LayerFixture() {
    for (const auto& n : t.graph.nodes()) layer.add_switch(n.id, 8);
    for (const auto& l : t.graph.links())
      (void)layer.add_carrier(l.a, l.b, rates::k10G, {l.id});
  }
};

TEST(OtnLayer, CreateCircuitDirectPath) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, false};
  auto id = f.layer.create_circuit(spec);
  ASSERT_TRUE(id.ok());
  const auto& c = f.layer.circuit(id.value());
  EXPECT_EQ(c.slots, 1);
  EXPECT_EQ(c.primary.size(), 1u);  // direct I-IV carrier
  EXPECT_EQ(c.state, OduCircuit::State::kActive);
  // Fabric xconnects installed at both ends.
  EXPECT_TRUE(f.layer.switch_at(f.t.i)->has_xconnect(id.value()));
  EXPECT_TRUE(f.layer.switch_at(f.t.iv)->has_xconnect(id.value()));
}

TEST(OtnLayer, ProtectedCircuitReservesDisjointBackup) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, true};
  auto id = f.layer.create_circuit(spec);
  ASSERT_TRUE(id.ok());
  const auto& c = f.layer.circuit(id.value());
  ASSERT_FALSE(c.backup.empty());
  // Backup carriers must not ride any primary risk link.
  for (const CarrierId b : c.backup) {
    for (const CarrierId p : c.primary) {
      for (const LinkId risk : f.layer.carrier(p).physical_route())
        EXPECT_FALSE(f.layer.carrier(b).rides_link(risk));
    }
    EXPECT_TRUE(f.layer.carrier(b).has_backup_reservation(id.value()));
  }
}

TEST(OtnLayer, CapacityExhaustionBlocksCircuit) {
  LayerFixture f;
  // Fill the direct I-IV carrier plus alternatives with 10G circuits...
  OtnLayer::CircuitSpec big{CustomerId{1}, f.t.i, f.t.iv,
                            DataRate::gbps(9.9), false};
  // 9.9G needs 8 slots = a whole OTU2. There are limited distinct routes;
  // keep creating until exhaustion.
  int created = 0;
  while (true) {
    auto r = f.layer.create_circuit(big);
    if (!r.ok()) {
      EXPECT_EQ(r.error().code(), ErrorCode::kUnreachable);
      break;
    }
    ++created;
    ASSERT_LT(created, 10);
  }
  EXPECT_GE(created, 2);  // direct + at least one groomed alternative
}

TEST(OtnLayer, FailoverToBackupAndRevert) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, true};
  const auto id = f.layer.create_circuit(spec).value();

  const auto affected = f.layer.on_link_failed(f.t.i_iv);
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kFailed);

  ASSERT_TRUE(f.layer.activate_backup(id).ok());
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kOnBackup);
  // Slots now held on the backup carriers.
  for (const CarrierId b : f.layer.circuit(id).backup)
    EXPECT_TRUE(f.layer.carrier(b).carries(id));

  const auto eligible = f.layer.on_link_repaired(f.t.i_iv);
  ASSERT_EQ(eligible.size(), 1u);
  ASSERT_TRUE(f.layer.revert_to_primary(id).ok());
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kActive);
  for (const CarrierId b : f.layer.circuit(id).backup)
    EXPECT_FALSE(f.layer.carrier(b).carries(id));
}

TEST(OtnLayer, UnprotectedCircuitCannotActivateBackup) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, false};
  const auto id = f.layer.create_circuit(spec).value();
  (void)f.layer.on_link_failed(f.t.i_iv);
  EXPECT_EQ(f.layer.activate_backup(id).error().code(), ErrorCode::kConflict);
}

TEST(OtnLayer, RepairWithoutFailoverResumesInPlace) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, false};
  const auto id = f.layer.create_circuit(spec).value();
  (void)f.layer.on_link_failed(f.t.i_iv);
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kFailed);
  const auto eligible = f.layer.on_link_repaired(f.t.i_iv);
  ASSERT_EQ(eligible.size(), 1u);
  ASSERT_TRUE(f.layer.revert_to_primary(id).ok());
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kActive);
  // No double-allocation happened: the direct carrier holds exactly 1 slot.
  int held = 0;
  for (const auto& carrier : f.layer.carriers())
    if (carrier.carries(id)) held += 1;
  EXPECT_EQ(held, 1);
  EXPECT_EQ(f.layer.slot_stats().working, 1);
}

TEST(OtnLayer, PreemptiveSwitchForMaintenance) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, true};
  const auto id = f.layer.create_circuit(spec).value();
  ASSERT_TRUE(f.layer.preemptive_switch(id).ok());
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kOnBackup);
  // Double switch rejected.
  EXPECT_FALSE(f.layer.preemptive_switch(id).ok());
}

TEST(OtnLayer, ReleaseFreesEverything) {
  LayerFixture f;
  OtnLayer::CircuitSpec spec{CustomerId{1}, f.t.i, f.t.iv, rates::k1G, true};
  const auto id = f.layer.create_circuit(spec).value();
  ASSERT_TRUE(f.layer.release_circuit(id).ok());
  EXPECT_EQ(f.layer.circuit_count(), 0u);
  const auto stats = f.layer.slot_stats();
  EXPECT_EQ(stats.working, 0);
  EXPECT_EQ(stats.shared_reserved, 0);
  EXPECT_EQ(f.layer.switch_at(f.t.i)->client_ports_in_use(), 0u);
  EXPECT_EQ(f.layer.release_circuit(id).error().code(), ErrorCode::kNotFound);
}

TEST(OtnLayer, SharedMeshUsesLessCapacityThanDedicated) {
  // The economic argument for shared-mesh: two protected circuits with
  // disjoint primaries reserve ONE backup pool, not two.
  LayerFixture f;
  // Circuit A: I -> IV (primary direct I-IV).
  const auto a = f.layer
                     .create_circuit({CustomerId{1}, f.t.i, f.t.iv,
                                      rates::k1G, true})
                     .value();
  // Circuit B: I -> II (primary direct I-II).
  const auto b = f.layer
                     .create_circuit({CustomerId{1}, f.t.i, f.t.ii,
                                      rates::k1G, true})
                     .value();
  (void)a;
  (void)b;
  const auto stats = f.layer.slot_stats();
  EXPECT_EQ(stats.working, 2);
  // Dedicated 1+1 would reserve one slot per backup hop per circuit
  // (>= 2 + 2); shared mesh reserves strictly less when risks are disjoint.
  int dedicated_equivalent = 0;
  for (const OduCircuitId id : {a, b})
    dedicated_equivalent +=
        static_cast<int>(f.layer.circuit(id).backup.size());
  EXPECT_LT(stats.shared_reserved, dedicated_equivalent);
}

TEST(MeshRestorer, SubSecondAutonomousRestoration) {
  sim::Engine engine(5);
  LayerFixture f;
  MeshRestorer restorer(&engine, &f.layer, MeshRestorer::Params{});
  const auto id = f.layer
                      .create_circuit({CustomerId{1}, f.t.i, f.t.iv,
                                       rates::k1G, true})
                      .value();
  std::optional<Status> outcome;
  restorer.on_restore([&](OduCircuitId cid, Status s) {
    EXPECT_EQ(cid, id);
    outcome = s;
  });
  restorer.link_failed(f.t.i_iv);
  engine.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  EXPECT_EQ(f.layer.circuit(id).state, OduCircuit::State::kOnBackup);
  const SimTime took = restorer.restoration_times().at(id);
  EXPECT_LT(took, seconds(1));  // "sub-second shared-mesh restoration"
  EXPECT_GT(took, SimTime{});
  EXPECT_EQ(restorer.restorations_ok(), 1u);
}

TEST(MeshRestorer, UnprotectedCircuitIgnored) {
  sim::Engine engine(5);
  LayerFixture f;
  MeshRestorer restorer(&engine, &f.layer, MeshRestorer::Params{});
  (void)f.layer.create_circuit(
      {CustomerId{1}, f.t.i, f.t.iv, rates::k1G, false});
  bool called = false;
  restorer.on_restore([&](OduCircuitId, Status) { called = true; });
  restorer.link_failed(f.t.i_iv);
  engine.run();
  EXPECT_FALSE(called);
  EXPECT_EQ(restorer.restorations_ok(), 0u);
}

TEST(MeshRestorer, ReportsRevertEligibility) {
  sim::Engine engine(5);
  LayerFixture f;
  MeshRestorer restorer(&engine, &f.layer, MeshRestorer::Params{});
  const auto id = f.layer
                      .create_circuit({CustomerId{1}, f.t.i, f.t.iv,
                                       rates::k1G, true})
                      .value();
  restorer.link_failed(f.t.i_iv);
  engine.run();
  std::optional<OduCircuitId> eligible;
  restorer.on_revert_eligible([&](OduCircuitId cid) { eligible = cid; });
  restorer.link_repaired(f.t.i_iv);
  ASSERT_TRUE(eligible.has_value());
  EXPECT_EQ(*eligible, id);
}

// Property: across many protected circuits, the shared pool never admits a
// backup it cannot honor under any single-link failure.
class SharedMeshProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedMeshProperty, SingleFailureAlwaysRestorable) {
  Rng rng(GetParam());
  LayerFixture f;
  std::vector<OduCircuitId> protected_ids;
  // Saturate with random protected 1G circuits until admission fails.
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {f.t.i, f.t.iv}, {f.t.i, f.t.iii}, {f.t.ii, f.t.iv}, {f.t.i, f.t.ii}};
  for (int i = 0; i < 30; ++i) {
    const auto& p = pairs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(pairs.size()) - 1))];
    auto r = f.layer.create_circuit(
        {CustomerId{1}, p.first, p.second, rates::k1G, true});
    if (r.ok()) protected_ids.push_back(r.value());
  }
  ASSERT_FALSE(protected_ids.empty());
  // For each single-link failure scenario, every affected protected circuit
  // must activate successfully (then everything is rolled back).
  for (const auto& link : f.t.graph.links()) {
    const auto affected = f.layer.on_link_failed(link.id);
    for (const OduCircuitId id : affected) {
      if (!f.layer.circuit(id).is_protected) continue;
      EXPECT_TRUE(f.layer.activate_backup(id).ok())
          << "link " << link.name << " circuit " << id;
    }
    (void)f.layer.on_link_repaired(link.id);
    for (const OduCircuitId id : affected) {
      if (!f.layer.circuit(id).is_protected) continue;
      ASSERT_TRUE(f.layer.revert_to_primary(id).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedMeshProperty,
                         ::testing::Values(1, 7, 19, 42));

}  // namespace
}  // namespace griphon::otn
