// Determinism golden test for the optimized k_shortest_paths.
//
// The production Yen's implementation was rewritten for speed (cached
// candidate weights, hash dedup, bitmap ban sets). RWA decisions — and
// therefore every blocking-probability table in the repo — depend on the
// exact path set AND order it returns, so the rewrite must be
// output-identical to the original. `reference_k_shortest_paths` below is
// the seed implementation, kept verbatim (std::set ban sets, linear dedup,
// weight recomputed per comparison); the tests compare against it on the
// paper testbed and on random meshes, under both weight functions and with
// link filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "topology/builders.hpp"
#include "topology/path.hpp"

namespace griphon::topology {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- seed implementation, verbatim -------------------------------------

std::optional<Path> reference_dijkstra(const Graph& g, NodeId src, NodeId dst,
                                       const WeightFn& weight,
                                       const LinkFilter& filter,
                                       const std::set<LinkId>& banned_links,
                                       const std::set<NodeId>& banned_nodes) {
  if (src == dst)
    throw std::invalid_argument("shortest_path: src == dst");
  const std::size_t n = g.nodes().size();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n);   // link used to reach node
  std::vector<NodeId> prev(n);  // predecessor node

  using QItem = std::pair<double, NodeId>;
  auto cmp = [](const QItem& a, const QItem& b) { return a.first > b.first; };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> pq(cmp);

  dist[src.value()] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u.value()]) continue;  // stale entry
    if (u == dst) break;
    for (const LinkId lid : g.links_at(u)) {
      if (banned_links.contains(lid)) continue;
      const Link& l = g.link(lid);
      if (filter && !filter(l)) continue;
      const NodeId v = l.peer(u);
      if (banned_nodes.contains(v)) continue;
      const double w = weight(l);
      if (dist[u.value()] + w < dist[v.value()]) {
        dist[v.value()] = dist[u.value()] + w;
        via[v.value()] = lid;
        prev[v.value()] = u;
        pq.emplace(dist[v.value()], v);
      }
    }
  }
  if (dist[dst.value()] == kInf) return std::nullopt;

  Path p;
  for (NodeId at = dst; at != src; at = prev[at.value()]) {
    p.nodes.push_back(at);
    p.links.push_back(via[at.value()]);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

double reference_path_weight(const Graph& g, const Path& p,
                             const WeightFn& weight) {
  double w = 0;
  for (const LinkId l : p.links) w += weight(g.link(l));
  return w;
}

std::vector<Path> reference_k_shortest_paths(const Graph& g, NodeId src,
                                             NodeId dst, std::size_t k,
                                             const WeightFn& weight,
                                             const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = reference_dijkstra(g, src, dst, weight, filter, {}, {});
  if (!first) return result;
  result.push_back(*std::move(first));

  auto cand_cmp = [&](const Path& a, const Path& b) {
    const double wa = reference_path_weight(g, a, weight);
    const double wb = reference_path_weight(g, b, weight);
    if (wa != wb) return wa < wb;
    return a.links < b.links;
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t i = 0; i + 1 < last.nodes.size(); ++i) {
      const NodeId spur_node = last.nodes[i];
      Path root;
      root.nodes.assign(last.nodes.begin(), last.nodes.begin() + i + 1);
      root.links.assign(last.links.begin(), last.links.begin() + i);

      std::set<LinkId> banned_links;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       p.nodes.begin())) {
          banned_links.insert(p.links[i]);
        }
      }
      std::set<NodeId> banned_nodes(root.nodes.begin(),
                                    std::prev(root.nodes.end()));

      auto spur = reference_dijkstra(g, spur_node, dst, weight, filter,
                                     banned_links, banned_nodes);
      if (!spur) continue;

      Path total = root;
      total.nodes.insert(total.nodes.end(), spur->nodes.begin() + 1,
                         spur->nodes.end());
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end()) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    const auto best =
        std::min_element(candidates.begin(), candidates.end(), cand_cmp);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

// --- comparison harness --------------------------------------------------

void expect_identical(const Graph& g, NodeId src, NodeId dst, std::size_t k,
                      const WeightFn& weight, const LinkFilter& filter) {
  const auto expected =
      reference_k_shortest_paths(g, src, dst, k, weight, filter);
  const auto actual = k_shortest_paths(g, src, dst, k, weight, filter);
  ASSERT_EQ(actual.size(), expected.size())
      << "path count diverged for k=" << k << " " << src.value() << "->"
      << dst.value();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << "path " << i << " diverged for k=" << k << " " << src.value()
        << "->" << dst.value();
  }
}

TEST(KShortestPathsGolden, PaperTestbedAllPairsBothWeights) {
  const auto topo = paper_testbed();
  const auto& g = topo.graph;
  for (const WeightFn& w : {distance_weight(), hop_weight()}) {
    for (std::size_t a = 0; a < g.nodes().size(); ++a) {
      for (std::size_t b = 0; b < g.nodes().size(); ++b) {
        if (a == b) continue;
        for (std::size_t k = 1; k <= 6; ++k) {
          expect_identical(g, NodeId{a}, NodeId{b}, k, w, nullptr);
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(KShortestPathsGolden, PaperTestbedWithLinkFilter) {
  const auto topo = paper_testbed();
  // Exclude the direct I-IV fiber: forces spur paths through II/III.
  const auto filter = [&](const Link& l) { return l.id != topo.i_iv; };
  for (std::size_t k = 1; k <= 5; ++k)
    expect_identical(topo.graph, topo.i, topo.iv, k, distance_weight(),
                     filter);
}

TEST(KShortestPathsGolden, UsBackboneSampledPairs) {
  const auto g = us_backbone();
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.nodes().size()) - 1));
    auto b = a;
    while (b == a)
      b = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(g.nodes().size()) - 1));
    const auto k =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    expect_identical(g, NodeId{a}, NodeId{b}, k, distance_weight(), nullptr);
    if (HasFatalFailure()) return;
    expect_identical(g, NodeId{a}, NodeId{b}, k, hop_weight(), nullptr);
    if (HasFatalFailure()) return;
  }
}

TEST(KShortestPathsGolden, RandomMeshesManySeeds) {
  for (const std::uint64_t seed : {3u, 11u, 31u, 47u}) {
    Rng mesh_rng(seed);
    const auto g = random_mesh(20, 3.5, mesh_rng);
    Rng rng(seed * 7 + 1);
    for (int trial = 0; trial < 15; ++trial) {
      const auto a = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(g.nodes().size()) - 1));
      auto b = a;
      while (b == a)
        b = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(g.nodes().size()) - 1));
      const auto k = static_cast<std::size_t>(rng.uniform_int(1, 10));
      expect_identical(g, NodeId{a}, NodeId{b}, k, distance_weight(),
                       nullptr);
      if (HasFatalFailure()) return;
      // Hop weight maximizes weight ties — the tie-break path must match.
      expect_identical(g, NodeId{a}, NodeId{b}, k, hop_weight(), nullptr);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(KShortestPathsGolden, RandomMeshWithRandomFilter) {
  Rng mesh_rng(5);
  const auto g = random_mesh(16, 3.0, mesh_rng);
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    // Ban a random ~20% of links; unreachable pairs must agree too (both
    // return an empty/truncated set).
    std::set<LinkId> banned;
    for (const auto& l : g.links())
      if (rng.chance(0.2)) banned.insert(l.id);
    const auto filter = [&](const Link& l) { return !banned.contains(l.id); };
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.nodes().size()) - 1));
    auto b = a;
    while (b == a)
      b = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(g.nodes().size()) - 1));
    expect_identical(g, NodeId{a}, NodeId{b}, 6, distance_weight(), filter);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace griphon::topology
