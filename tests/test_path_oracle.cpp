// Oracle tests: the production path algorithms (Dijkstra, Yen, Bhandari)
// are checked against brute-force enumeration on small random graphs.
#include <gtest/gtest.h>

#include <set>

#include "topology/builders.hpp"
#include "topology/path.hpp"

namespace griphon::topology {
namespace {

/// All loopless paths src->dst by DFS (exponential; fine for <= 8 nodes).
void enumerate(const Graph& g, NodeId at, NodeId dst,
               std::set<NodeId>& visited, Path& current,
               std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(current);
    return;
  }
  for (const LinkId lid : g.links_at(at)) {
    const Link& l = g.link(lid);
    const NodeId next = l.peer(at);
    if (visited.contains(next)) continue;
    visited.insert(next);
    current.nodes.push_back(next);
    current.links.push_back(lid);
    enumerate(g, next, dst, visited, current, out);
    current.nodes.pop_back();
    current.links.pop_back();
    visited.erase(next);
  }
}

std::vector<Path> all_paths(const Graph& g, NodeId src, NodeId dst) {
  std::vector<Path> out;
  std::set<NodeId> visited{src};
  Path current;
  current.nodes.push_back(src);
  enumerate(g, src, dst, visited, current, out);
  return out;
}

double weight_of(const Graph& g, const Path& p) {
  return p.length(g).in_km();
}

class PathOracle : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make_graph() {
    Rng rng(GetParam());
    return random_mesh(7, 3.0, rng);
  }
};

TEST_P(PathOracle, DijkstraMatchesBruteForce) {
  const Graph g = make_graph();
  const NodeId src{0}, dst{6};
  const auto brute = all_paths(g, src, dst);
  const auto fast = shortest_path(g, src, dst, distance_weight());
  if (brute.empty()) {
    EXPECT_FALSE(fast.has_value());
    return;
  }
  ASSERT_TRUE(fast.has_value());
  double best = 1e18;
  for (const auto& p : brute) best = std::min(best, weight_of(g, p));
  EXPECT_NEAR(weight_of(g, *fast), best, 1e-9);
}

TEST_P(PathOracle, YenMatchesSortedBruteForce) {
  const Graph g = make_graph();
  const NodeId src{0}, dst{6};
  auto brute = all_paths(g, src, dst);
  std::sort(brute.begin(), brute.end(), [&](const Path& a, const Path& b) {
    return weight_of(g, a) < weight_of(g, b);
  });
  const std::size_t k = std::min<std::size_t>(5, brute.size());
  const auto fast = k_shortest_paths(g, src, dst, k, distance_weight());
  ASSERT_EQ(fast.size(), k);
  // Weights must match the k smallest brute-force weights (paths may tie).
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_NEAR(weight_of(g, fast[i]), weight_of(g, brute[i]), 1e-9)
        << "at rank " << i;
}

TEST_P(PathOracle, BhandariMatchesBruteForceDisjointPair) {
  const Graph g = make_graph();
  const NodeId src{0}, dst{6};
  const auto brute = all_paths(g, src, dst);
  // Brute-force optimal link-disjoint pair.
  double best = 1e18;
  bool exists = false;
  for (std::size_t i = 0; i < brute.size(); ++i) {
    std::set<LinkId> li(brute[i].links.begin(), brute[i].links.end());
    for (std::size_t j = i + 1; j < brute.size(); ++j) {
      const bool disjoint =
          std::none_of(brute[j].links.begin(), brute[j].links.end(),
                       [&](LinkId l) { return li.contains(l); });
      if (!disjoint) continue;
      exists = true;
      best = std::min(best,
                      weight_of(g, brute[i]) + weight_of(g, brute[j]));
    }
  }
  const auto fast = disjoint_pair(g, src, dst, distance_weight());
  ASSERT_EQ(fast.has_value(), exists);
  if (!exists) return;
  EXPECT_NEAR(weight_of(g, fast->primary) + weight_of(g, fast->secondary),
              best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathOracle,
                         ::testing::Values(2, 5, 9, 14, 23, 37, 51, 68, 77,
                                           91));

}  // namespace
}  // namespace griphon::topology
