// Tests for the §4 resource planner: Erlang-B math and pool sizing, plus a
// closed loop against the simulator (plan a pool, offer the forecast
// demand, verify measured blocking lands near the target).
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "workload/arrivals.hpp"

namespace griphon::core {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic table values.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-9);
  EXPECT_NEAR(erlang_b(1.0, 2), 0.2, 1e-9);
  EXPECT_NEAR(erlang_b(10.0, 10), 0.2146, 1e-3);
  EXPECT_NEAR(erlang_b(3.0, 5), 0.11005, 1e-4);
  EXPECT_NEAR(erlang_b(0.0, 5), 0.0, 1e-12);
  EXPECT_NEAR(erlang_b(5.0, 0), 1.0, 1e-12);
}

TEST(ErlangB, Monotonicity) {
  // More servers -> less blocking; more load -> more blocking.
  for (int c = 1; c < 20; ++c)
    EXPECT_LT(erlang_b(8.0, c + 1), erlang_b(8.0, c));
  for (double a = 1; a < 20; a += 1)
    EXPECT_LT(erlang_b(a, 10), erlang_b(a + 1, 10));
}

TEST(ErlangB, RejectsBadInput) {
  EXPECT_THROW((void)erlang_b(-1, 5), std::invalid_argument);
  EXPECT_THROW((void)servers_for_blocking(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)servers_for_blocking(5, 1.5), std::invalid_argument);
}

TEST(ErlangB, ServersForBlocking) {
  // The returned size meets the target and is minimal.
  for (const double a : {0.5, 2.0, 8.0, 20.0}) {
    for (const double target : {0.1, 0.01, 0.001}) {
      const int c = servers_for_blocking(a, target);
      EXPECT_LE(erlang_b(a, c), target);
      if (c > 0) {
        EXPECT_GT(erlang_b(a, c - 1), target);
      }
    }
  }
  EXPECT_EQ(servers_for_blocking(0, 0.01), 0);
}

TEST(Planner, PoolSizesFollowDemand) {
  const auto t = topology::paper_testbed();
  const std::vector<DemandForecast> demand = {
      {t.i, t.iv, 4.0},   // heavy relation
      {t.i, t.iii, 1.0},  // light relation
  };
  const auto plan = ResourcePlanner::plan_ot_pools(t.graph, demand, 0.01);
  ASSERT_EQ(plan.size(), t.graph.nodes().size());
  const auto by_node = [&](NodeId n) {
    for (const auto& r : plan)
      if (r.node == n) return r;
    throw std::out_of_range("node");
  };
  // Node I terminates both demands (5 Erl), IV only the heavy one (4),
  // III only the light one (1), II nothing.
  EXPECT_NEAR(by_node(t.i).offered_erlangs, 5.0, 1e-9);
  EXPECT_NEAR(by_node(t.iv).offered_erlangs, 4.0, 1e-9);
  EXPECT_NEAR(by_node(t.iii).offered_erlangs, 1.0, 1e-9);
  EXPECT_EQ(by_node(t.ii).ots_needed, 0);
  EXPECT_GT(by_node(t.i).ots_needed, by_node(t.iii).ots_needed);
  for (const auto& r : plan) EXPECT_LE(r.predicted_blocking, 0.01);
}

TEST(Planner, RegenPoolsOnlyWhereReachBinds) {
  // The metro-scale testbed needs no regens anywhere; the continental
  // backbone needs them at interior sites of long routes.
  const auto t = topology::paper_testbed();
  dwdm::ReachModel reach;
  const auto metro = ResourcePlanner::plan_regen_pools(
      t.graph, reach, {{t.i, t.iv, 5.0}}, rates::k10G);
  for (const auto& r : metro) EXPECT_EQ(r.ots_needed, 0);

  const auto g = topology::us_backbone();
  const auto sea = *g.find_node("Seattle");
  const auto pri = *g.find_node("Princeton");
  const auto cont = ResourcePlanner::plan_regen_pools(
      g, reach, {{sea, pri, 5.0}}, rates::k10G);
  int total = 0;
  for (const auto& r : cont) total += r.ots_needed;
  EXPECT_GT(total, 0);
  // Endpoints themselves never host regens for their own demand.
  for (const auto& r : cont) {
    if (r.node == sea || r.node == pri) {
      EXPECT_EQ(r.ots_needed, 0);
    }
  }
}

// Closed loop: size the pool with Erlang-B, drive the simulator with the
// forecast demand, and check measured blocking is in the neighbourhood of
// the target (routing/spectrum coupling adds slack; the check is a band).
class PlannerLoop : public ::testing::TestWithParam<double> {};

TEST_P(PlannerLoop, PlannedPoolMeetsTargetInSimulation) {
  const double erlangs = GetParam();
  const double target = 0.05;
  const auto topo = topology::paper_testbed();
  const std::vector<DemandForecast> demand = {
      {topo.i, topo.iv, erlangs / 2},
      {topo.i, topo.iii, erlangs / 2},
  };
  const auto plan = ResourcePlanner::plan_ot_pools(topo.graph, demand, target);
  std::size_t worst_pool = 0;
  for (const auto& r : plan)
    worst_pool = std::max(worst_pool, static_cast<std::size_t>(r.ots_needed));

  // Build the plant with the recommended (worst-node) pool everywhere.
  sim::Engine engine(static_cast<std::uint64_t>(erlangs * 100) + 3);
  NetworkModel::Config cfg;
  cfg.ots_per_node = worst_pool;
  cfg.with_otn = false;
  cfg.fxc_ports_per_node = 128;
  NetworkModel model(&engine, topo.graph, cfg);
  const CustomerId csp{1};
  std::vector<MuxponderId> i_sites, iii_sites, iv_sites;
  for (int k = 0; k < 4; ++k) {  // plenty of access so OTs bind
    i_sites.push_back(model.add_customer_site(csp, "i", topo.i).nte);
    iii_sites.push_back(model.add_customer_site(csp, "iii", topo.iii).nte);
    iv_sites.push_back(model.add_customer_site(csp, "iv", topo.iv).nte);
  }
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, csp, DataRate::gbps(1000000));
  workload::PoissonConnectionLoad::Params p;
  const double holding_hours = 2.0;
  p.arrivals_per_hour = erlangs / holding_hours;
  p.mean_holding = hours(2);
  p.rate = rates::k10G;
  for (int k = 0; k < 4; ++k) {
    p.pairs.emplace_back(i_sites[static_cast<std::size_t>(k)],
                         iv_sites[static_cast<std::size_t>(k)]);
    p.pairs.emplace_back(i_sites[static_cast<std::size_t>(k)],
                         iii_sites[static_cast<std::size_t>(k)]);
  }
  workload::PoissonConnectionLoad load(&engine, &portal, p);
  load.run_until(hours(24 * 10));
  engine.run();
  // Within ~3x of the analytic target (simulation noise, setup holding
  // OTs slightly longer than the nominal holding time, shared spectrum).
  EXPECT_LE(load.stats().blocking_probability(), target * 3);
}

INSTANTIATE_TEST_SUITE_P(Loads, PlannerLoop, ::testing::Values(2.0, 6.0));

}  // namespace
}  // namespace griphon::core
