// Tests for the control protocol: byte-level codecs, frame round-trips for
// every message type, malformed-frame rejection, the simulated channel and
// the retrying request client.
#include <gtest/gtest.h>

#include "proto/channel.hpp"
#include "proto/client.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "sim/engine.hpp"

namespace griphon::proto {
namespace {

TEST(Wire, IntegerRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1'000'000'000'000);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_EQ(r.i64().value(), -1'000'000'000'000);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, BigEndianOnTheWire) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(Wire, StringAndDoubleAndBool) {
  ByteWriter w;
  w.str("griphon");
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "griphon");
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_FALSE(r.boolean().value());
}

TEST(Wire, TruncatedReadsFail) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.u32().ok());
  ByteReader r2(w.bytes());
  EXPECT_TRUE(r2.u16().ok());
  EXPECT_FALSE(r2.u8().ok());
}

TEST(Wire, BadBooleanRejected) {
  ByteWriter w;
  w.u8(2);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.boolean().ok());
}

TEST(Wire, TruncatedStringFails) {
  ByteWriter w;
  w.u16(10);  // claims 10 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.str().ok());
}

// --- frame round-trips over the whole message corpus -----------------------

std::vector<Message> message_corpus() {
  std::vector<Message> out;
  out.push_back(Response{0, "", 17});
  out.push_back(Response{static_cast<std::uint16_t>(ErrorCode::kBusy),
                         "port busy", 0});
  out.push_back(FxcConnect{FxcId{3}, PortId{1}, PortId{9}});
  out.push_back(FxcDisconnect{FxcId{3}, PortId{1}});
  out.push_back(RoadmExpress{RoadmId{2}, 14, 0, 2, true});
  out.push_back(RoadmExpress{RoadmId{2}, 14, 0, 2, false});
  out.push_back(RoadmAddDrop{RoadmId{1}, PortId{6}, 1, 33, true});
  out.push_back(OtTune{TransponderId{8}, 21});
  out.push_back(OtSetState{TransponderId{8}, OtSetState::Action::kDeactivate});
  out.push_back(RegenEngage{RegenId{4}, 5, 9, true});
  out.push_back(PowerBalance{LinkId{12}, 7});
  OtnOp create;
  create.op = OtnOp::Op::kCreate;
  create.customer = CustomerId{2};
  create.src = NodeId{1};
  create.dst = NodeId{3};
  create.rate_bps = rates::k1G.in_bps();
  create.protect = true;
  out.push_back(create);
  OtnOp release;
  release.op = OtnOp::Op::kRelease;
  release.circuit = OduCircuitId{77};
  out.push_back(release);
  out.push_back(NtePort{MuxponderId{1}, 3, true});
  Alarm alarm;
  alarm.id = AlarmId{5};
  alarm.type = AlarmType::kLos;
  alarm.raised_at = seconds(42);
  alarm.source = "roadm/2";
  alarm.node = NodeId{2};
  alarm.link = LinkId{4};
  alarm.channel = 11;
  alarm.detail = "express";
  out.push_back(AlarmEvent{alarm});
  Alarm bare;
  bare.id = AlarmId{6};
  bare.type = AlarmType::kClear;
  bare.source = "roadm/3";
  out.push_back(AlarmEvent{bare});
  return out;
}

class FrameRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameRoundTrip, EncodeDecodeIdentity) {
  const Message original = message_corpus()[GetParam()];
  const Bytes bytes = encode_frame(/*request_id=*/991, original);
  const auto frame = decode_frame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().request_id, 991u);
  EXPECT_EQ(type_of(frame.value().message), type_of(original));

  // Spot-check payload fidelity per type.
  if (const auto* m = std::get_if<RoadmExpress>(&original)) {
    const auto& d = std::get<RoadmExpress>(frame.value().message);
    EXPECT_EQ(d.roadm, m->roadm);
    EXPECT_EQ(d.channel, m->channel);
    EXPECT_EQ(d.degree_in, m->degree_in);
    EXPECT_EQ(d.degree_out, m->degree_out);
    EXPECT_EQ(d.engage, m->engage);
  }
  if (const auto* m = std::get_if<OtnOp>(&original)) {
    const auto& d = std::get<OtnOp>(frame.value().message);
    EXPECT_EQ(d.op, m->op);
    EXPECT_EQ(d.customer, m->customer);
    EXPECT_EQ(d.rate_bps, m->rate_bps);
    EXPECT_EQ(d.protect, m->protect);
    EXPECT_EQ(d.circuit, m->circuit);
  }
  if (const auto* m = std::get_if<AlarmEvent>(&original)) {
    const auto& d = std::get<AlarmEvent>(frame.value().message);
    EXPECT_EQ(d.alarm.type, m->alarm.type);
    EXPECT_EQ(d.alarm.source, m->alarm.source);
    EXPECT_EQ(d.alarm.link, m->alarm.link);
    EXPECT_EQ(d.alarm.channel, m->alarm.channel);
    EXPECT_EQ(d.alarm.raised_at, m->alarm.raised_at);
  }
  if (const auto* m = std::get_if<Response>(&original)) {
    const auto& d = std::get<Response>(frame.value().message);
    EXPECT_EQ(d.code, m->code);
    EXPECT_EQ(d.message, m->message);
    EXPECT_EQ(d.aux, m->aux);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FrameRoundTrip,
                         ::testing::Range<std::size_t>(0, 16));

TEST(Frame, RejectsBadMagic) {
  Bytes b = encode_frame(1, Message{PowerBalance{LinkId{1}, 2}});
  b[0] ^= 0xFF;
  EXPECT_FALSE(decode_frame(b).ok());
}

TEST(Frame, RejectsBadVersion) {
  Bytes b = encode_frame(1, Message{PowerBalance{LinkId{1}, 2}});
  b[5] = 9;
  EXPECT_FALSE(decode_frame(b).ok());
}

TEST(Frame, RejectsLengthMismatch) {
  Bytes b = encode_frame(1, Message{PowerBalance{LinkId{1}, 2}});
  b.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_frame(b).ok());
}

TEST(Frame, RejectsUnknownType) {
  Bytes b = encode_frame(1, Message{PowerBalance{LinkId{1}, 2}});
  b[6] = 0x7F;
  b[7] = 0x7F;
  EXPECT_FALSE(decode_frame(b).ok());
}

TEST(Frame, RejectsTruncatedPayload) {
  Bytes b = encode_frame(1, Message{OtTune{TransponderId{1}, 5}});
  b.resize(b.size() - 2);
  EXPECT_FALSE(decode_frame(b).ok());
}

// --- channel ---------------------------------------------------------------

TEST(Channel, DeliversWithLatency) {
  sim::Engine engine;
  ControlChannel::Params params;
  params.latency = LatencyModel::fixed(milliseconds(7));
  ControlChannel chan(&engine, params);
  std::vector<SimTime> delivered;
  chan.b().on_receive([&](const Bytes&) { delivered.push_back(engine.now()); });
  chan.a().send(Bytes{1, 2, 3});
  engine.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], milliseconds(7));
  EXPECT_EQ(chan.frames_sent(), 1u);
}

TEST(Channel, BothDirectionsWork) {
  sim::Engine engine;
  ControlChannel chan(&engine, ControlChannel::Params{});
  int a_got = 0, b_got = 0;
  chan.a().on_receive([&](const Bytes&) { ++a_got; });
  chan.b().on_receive([&](const Bytes&) { ++b_got; });
  chan.a().send(Bytes{1});
  chan.b().send(Bytes{2});
  engine.run();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
}

TEST(Channel, LossDropsFrames) {
  sim::Engine engine(3);
  ControlChannel::Params params;
  params.loss_probability = 1.0;
  ControlChannel chan(&engine, params);
  int got = 0;
  chan.b().on_receive([&](const Bytes&) { ++got; });
  chan.a().send(Bytes{1});
  engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(chan.frames_dropped(), 1u);
}

TEST(Channel, FifoEvenWithJitter) {
  sim::Engine engine(11);
  ControlChannel::Params params;
  params.latency = LatencyModel::normal(milliseconds(1), milliseconds(5),
                                        milliseconds(5));
  ControlChannel chan(&engine, params);
  std::vector<int> order;
  chan.b().on_receive([&](const Bytes& b) { order.push_back(b[0]); });
  for (int i = 0; i < 20; ++i)
    chan.a().send(Bytes{static_cast<std::uint8_t>(i)});
  engine.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- request client ---------------------------------------------------------

/// Minimal echo server used to exercise the client.
struct EchoServer {
  explicit EchoServer(Endpoint* ep) : ep_(ep) {
    ep_->on_receive([this](const Bytes& b) {
      ++requests;
      if (mute) return;
      const auto f = decode_frame(b);
      ASSERT_TRUE(f.ok());
      Response r;
      r.aux = f.value().request_id;
      ep_->send(encode_frame(f.value().request_id, Message{r}));
    });
  }
  Endpoint* ep_;
  int requests = 0;
  bool mute = false;
};

TEST(RequestClient, CorrelatesResponse) {
  sim::Engine engine;
  ControlChannel chan(&engine, ControlChannel::Params{});
  RequestClient client(&engine, &chan.a(), RequestClient::Params{});
  EchoServer server(&chan.b());
  std::optional<Response> got;
  client.request(Message{OtTune{TransponderId{1}, 4}},
                 [&](Result<Response> r) {
                   ASSERT_TRUE(r.ok());
                   got = r.value();
                 });
  engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_EQ(client.pending(), 0u);
}

TEST(RequestClient, RetriesOnLossAndRecovers) {
  sim::Engine engine(5);
  ControlChannel::Params cp;
  cp.loss_probability = 0.3;
  ControlChannel chan(&engine, cp);
  RequestClient::Params rp;
  rp.timeout = milliseconds(100);
  rp.max_attempts = 15;
  RequestClient client(&engine, &chan.a(), rp);
  EchoServer server(&chan.b());
  int completed = 0;
  for (int i = 0; i < 20; ++i)
    client.request(Message{PowerBalance{LinkId{1}, i}},
                   [&](Result<Response> r) {
                     EXPECT_TRUE(r.ok());
                     ++completed;
                   });
  engine.run();
  EXPECT_EQ(completed, 20);
}

TEST(RequestClient, TimesOutWhenServerSilent) {
  sim::Engine engine;
  ControlChannel chan(&engine, ControlChannel::Params{});
  RequestClient::Params rp;
  rp.timeout = milliseconds(50);
  rp.max_attempts = 3;
  RequestClient client(&engine, &chan.a(), rp);
  EchoServer server(&chan.b());
  server.mute = true;
  std::optional<Error> err;
  client.request(Message{OtTune{TransponderId{1}, 4}},
                 [&](Result<Response> r) {
                   ASSERT_FALSE(r.ok());
                   err = r.error();
                 });
  engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ErrorCode::kTimeout);
  EXPECT_EQ(server.requests, 3);  // original + 2 retries
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST(RequestClient, UnsolicitedFramesGoToEventHandler) {
  sim::Engine engine;
  ControlChannel chan(&engine, ControlChannel::Params{});
  RequestClient client(&engine, &chan.a(), RequestClient::Params{});
  std::optional<Frame> event;
  client.on_event([&](const Frame& f) { event = f; });
  Alarm alarm;
  alarm.id = AlarmId{1};
  alarm.source = "roadm/9";
  chan.b().send(encode_frame(0, Message{AlarmEvent{alarm}}));
  engine.run();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(type_of(event->message), MessageType::kAlarmEvent);
}

TEST(RequestClient, ManyOutstandingRequestsCorrelateCorrectly) {
  sim::Engine engine;
  ControlChannel chan(&engine, ControlChannel::Params{});
  RequestClient client(&engine, &chan.a(), RequestClient::Params{});
  EchoServer server(&chan.b());
  // The echo server returns the request id in aux: check 1:1 mapping.
  std::vector<std::uint64_t> aux_seen;
  for (int i = 0; i < 10; ++i)
    client.request(Message{PowerBalance{LinkId{1}, i}},
                   [&](Result<Response> r) {
                     aux_seen.push_back(r.value().aux);
                   });
  engine.run();
  ASSERT_EQ(aux_seen.size(), 10u);
  std::set<std::uint64_t> unique(aux_seen.begin(), aux_seen.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace griphon::proto
