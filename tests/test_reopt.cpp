// Tests for the global re-optimization subsystem: fragmentation scoring,
// first-fit compaction planning (never-worsen contract), dependency-aware
// hitless migration campaigns with cycle breaking, abort semantics, BoD
// exemption, SLO wiring, and snapshot-reader safety during a campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <optional>
#include <thread>

#include "core/scenario.hpp"
#include "reopt/service.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/builders.hpp"

namespace griphon::reopt {
namespace {

using core::TestbedScenario;

core::NetworkModel::Config small_config() {
  core::NetworkModel::Config c;
  c.channels = 8;
  c.with_otn = false;  // wavelength services only; reopt's domain
  return c;
}

/// Engine-synchronous connect through the scenario portal.
ConnectionId connect_sync(TestbedScenario& s, MuxponderId a, MuxponderId b) {
  std::optional<Result<ConnectionId>> result;
  s.portal->connect(a, b, rates::k10G, core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { result = std::move(r); });
  s.engine.run();
  EXPECT_TRUE(result.has_value() && result->ok());
  return result->value();
}

void disconnect_sync(TestbedScenario& s, ConnectionId id) {
  std::optional<Status> done;
  s.portal->disconnect(id, [&](Status st) { done = st; });
  s.engine.run();
  EXPECT_TRUE(done && done->ok());
}

// --- FragmentationAnalyzer --------------------------------------------------

struct AnalyzerFixture : ::testing::Test {
  AnalyzerFixture()
      : topo(topology::paper_testbed()),
        model(&engine, topo.graph, small_config()),
        inventory(&model),
        rwa(&model, &inventory,
            core::RwaEngine::Params{core::WavelengthPolicy::kFirstFit, 1}),
        analyzer(&model) {}

  sim::Engine engine{1};
  topology::Testbed topo;
  core::NetworkModel model;
  core::Inventory inventory;
  core::RwaEngine rwa;
  FragmentationAnalyzer analyzer;
};

TEST_F(AnalyzerFixture, ScoresKnownFragmentationPattern) {
  // Occupy channels 1, 3, 5 on I-IV: free = {0,2,4,6,7}, largest block
  // {6,7} -> score 1 - 2/5 = 0.6.
  inventory.reserve_channel(topo.i_iv, 1);
  inventory.reserve_channel(topo.i_iv, 3);
  inventory.reserve_channel(topo.i_iv, 5);
  const auto report = analyzer.analyze_links(*inventory.snapshot());
  const auto it = std::find_if(
      report.links.begin(), report.links.end(),
      [&](const LinkFragmentation& l) { return l.link == topo.i_iv; });
  ASSERT_NE(it, report.links.end());
  EXPECT_EQ(it->free, 5u);
  EXPECT_EQ(it->used, 3u);
  EXPECT_EQ(it->largest_free_block, 2u);
  EXPECT_NEAR(it->score, 0.6, 1e-9);
  EXPECT_NEAR(report.max_score, 0.6, 1e-9);
  EXPECT_GT(report.mean_score, 0.0);
  EXPECT_EQ(report.fragmented_links, 1u);
}

TEST_F(AnalyzerFixture, ZeroConnectionsProducesFiniteZeroScores) {
  const auto report = analyzer.analyze_links(*inventory.snapshot());
  EXPECT_TRUE(std::isfinite(report.mean_score));
  EXPECT_TRUE(std::isfinite(report.max_score));
  EXPECT_EQ(report.mean_score, 0.0);
  EXPECT_EQ(report.fragmented_links, 0u);
  for (const auto& l : report.links) {
    EXPECT_TRUE(std::isfinite(l.score));
    EXPECT_EQ(l.largest_free_block, l.free);
  }
}

TEST(FragmentationDegenerate, SingleFullLinkTopologyHasNoNaN) {
  sim::Engine engine{1};
  topology::Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const LinkId ab = g.add_link(a, b, Distance::km(10), "a-b");
  core::NetworkModel::Config cfg;
  cfg.channels = 4;
  cfg.ots_per_node = 1;
  cfg.regens_per_node = 0;
  cfg.with_otn = false;
  core::NetworkModel model(&engine, g, cfg);
  core::Inventory inventory(&model);
  for (int ch = 0; ch < 4; ++ch) inventory.reserve_channel(ab, ch);
  FragmentationAnalyzer analyzer(&model);
  core::RwaEngine rwa(&model, &inventory, core::RwaEngine::Params{});
  const auto report =
      analyzer.analyze(*inventory.snapshot(), rwa, {{a, b}, {a, a}});
  ASSERT_EQ(report.links.size(), 1u);
  // Completely full link: nothing to defragment, score defined as 0.
  EXPECT_EQ(report.links[0].free, 0u);
  EXPECT_TRUE(std::isfinite(report.links[0].score));
  EXPECT_EQ(report.links[0].score, 0.0);
  EXPECT_TRUE(std::isfinite(report.mean_score));
  // The full route has no per-hop capacity, so it is load-blocked, not
  // continuity-blocked; and the degenerate (a, a) pair is ignored.
  EXPECT_EQ(report.pairs_scored, 1u);
  EXPECT_EQ(report.blocked_candidates, 0u);
  EXPECT_EQ(report.stranded_pairs, 0u);
}

TEST_F(AnalyzerFixture, DetectsContinuityStrandedPair) {
  // With k=1 there is one candidate route II->IV (two hops on this
  // testbed). Give its links disjoint half-spectrums: per-hop capacity
  // everywhere, no end-to-end channel.
  const auto& routes = rwa.candidate_routes(topo.ii, topo.iv);
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_EQ(routes[0].links.size(), 2u);
  for (int ch = 0; ch < 4; ++ch)
    inventory.reserve_channel(routes[0].links[0], ch);
  for (int ch = 4; ch < 8; ++ch)
    inventory.reserve_channel(routes[0].links[1], ch);
  const auto report = analyzer.analyze(*inventory.snapshot(), rwa,
                                       {{topo.ii, topo.iv}});
  EXPECT_EQ(report.pairs_scored, 1u);
  EXPECT_EQ(report.blocked_candidates, 1u);
  EXPECT_EQ(report.stranded_pairs, 1u);
}

// --- FirstFitCompactionSolver ----------------------------------------------

TEST_F(AnalyzerFixture, SolverCompactsToLowestChannelsAndNeverWorsens) {
  const auto& routes = rwa.candidate_routes(topo.i, topo.iv);
  ASSERT_FALSE(routes.empty());
  const topology::Path route = routes.front();
  ASSERT_EQ(route.links.size(), 1u);

  const auto item_at = [&](std::uint64_t id, dwdm::ChannelIndex ch) {
    MoveItem item;
    item.id = ConnectionId{id};
    item.rate = rates::k10G;
    item.current.path = route;
    item.current.segments.push_back(core::SegmentPlan{0, 0, ch});
    inventory.reserve_channel(route.links[0], ch);  // its lit cell
    return item;
  };

  PlanInput input;
  input.model = &model;
  input.items.push_back(item_at(1, 6));
  input.items.push_back(item_at(2, 7));
  input.items.push_back(item_at(3, 0));  // already at the bottom
  input.snap = inventory.snapshot();

  FirstFitCompactionSolver solver;
  const MigrationPlan plan = solver.solve(input);
  ASSERT_EQ(plan.moves.size(), 2u);  // item 3 cannot strictly improve
  for (const Move& m : plan.moves) {
    const auto it = std::find_if(
        input.items.begin(), input.items.end(),
        [&](const MoveItem& i) { return i.id == m.id; });
    ASSERT_NE(it, input.items.end());
    EXPECT_TRUE(move_improves(it->current, m.target));
  }
  // Compaction lands on the lowest free block {1, 2}: distinct targets.
  EXPECT_EQ(plan.moves[0].target.segments[0].channel, 1);
  EXPECT_EQ(plan.moves[1].target.segments[0].channel, 2);
}

// --- GlobalPlanner invariants ----------------------------------------------

/// Deliberately broken solver: moves every item UP one channel.
struct WorseningSolver : ReoptSolver {
  [[nodiscard]] const char* name() const noexcept override { return "bad"; }
  [[nodiscard]] MigrationPlan solve(const PlanInput& input) const override {
    MigrationPlan plan;
    plan.items_considered = input.items.size();
    for (const MoveItem& item : input.items) {
      Move m;
      m.id = item.id;
      m.target = item.current;
      for (auto& seg : m.target.segments) ++seg.channel;
      plan.moves.push_back(std::move(m));
    }
    return plan;
  }
};

TEST(GlobalPlannerTest, RejectsSolverOutputViolatingNeverWorsen) {
  TestbedScenario s(91, small_config());
  const auto id = connect_sync(s, s.site_i, s.site_iv);
  ASSERT_TRUE(id.valid());
  GlobalPlanner planner(s.controller.get());
  planner.set_solver(std::make_unique<WorseningSolver>());
  const MigrationPlan plan = planner.plan({}, 64);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.rejected_by_invariant, 1u);
}

TEST(GlobalPlannerTest, ExemptConnectionsNeverPlanned) {
  TestbedScenario s(92, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  disconnect_sync(s, a);  // b now sits above a hole
  GlobalPlanner planner(s.controller.get());
  EXPECT_EQ(planner.plan({}, 64).moves.size(), 1u);
  EXPECT_TRUE(planner.plan({b}, 64).moves.empty());
}

// --- campaigns on the live testbed -----------------------------------------

TEST(ReoptCampaign, CompactsAfterChurnWithoutServiceImpact) {
  TestbedScenario s(93, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  disconnect_sync(s, a);
  ASSERT_EQ(s.controller->connection(b).plan.segments[0].channel, 1);

  ReoptService::Params params;
  params.pairs = {{s.topo.i, s.topo.iv}};
  ReoptService service(s.controller.get(), params);
  EXPECT_GT(service.analyze().mean_score, 0.0);

  std::optional<MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->aborted);
  EXPECT_EQ(report->moves_planned, 1u);
  EXPECT_EQ(report->moves_rolled, 1u);
  EXPECT_EQ(report->rolls_failed, 0u);

  const auto& c = s.controller->connection(b);
  EXPECT_EQ(c.state, core::ConnectionState::kActive);
  EXPECT_EQ(c.plan.segments[0].channel, 0);
  EXPECT_EQ(c.rolls, 1);
  // Hitless: no restoration, no outage, and the controller's roll ledger
  // matches the connection's.
  EXPECT_EQ(c.restorations, 0);
  EXPECT_EQ(c.total_outage, SimTime{});
  EXPECT_EQ(s.controller->stats().rolls_ok, 1u);
  EXPECT_EQ(s.controller->stats().rolls_failed, 0u);
  // Fragmentation strictly improved.
  EXPECT_LT(service.analyze().mean_score, 0.6);

  // Device state reconciles cleanly post-campaign: no leaks, no drift.
  std::optional<Result<core::GriphonController::ResyncReport>> resync;
  s.controller->resync([&](Result<core::GriphonController::ResyncReport> r) {
    resync = std::move(r);
  });
  s.engine.run();
  ASSERT_TRUE(resync && resync->ok());
  EXPECT_EQ(resync->value().total_leaks(), 0u);
  EXPECT_EQ(resync->value().drifted_connections, 0u);
}

TEST(ReoptCampaign, ExecutorHonorsFreedByDependencies) {
  TestbedScenario s(94, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  const auto c = connect_sync(s, s.site_i, s.site_iv);
  disconnect_sync(s, a);  // channels now: hole at 0, b on 1, c on 2

  ReoptService::Params params;
  params.executor.max_concurrent_rolls = 4;  // ordering must not rely on it
  ReoptService service(s.controller.get(), params);
  std::optional<MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->moves_rolled, 2u);
  EXPECT_EQ(report->cycle_breaks, 0u);

  const auto outcome_of = [&](ConnectionId id) {
    return *std::find_if(report->outcomes.begin(), report->outcomes.end(),
                         [&](const MigrationExecutor::MoveOutcome& o) {
                           return o.id == id;
                         });
  };
  // c targets channel 1, which b frees: c may not even launch before b
  // finished its roll.
  EXPECT_GE(outcome_of(c).launched_at, outcome_of(b).finished_at);
  EXPECT_EQ(s.controller->connection(b).plan.segments[0].channel, 0);
  EXPECT_EQ(s.controller->connection(c).plan.segments[0].channel, 1);
}

TEST(ReoptCampaign, BreaksDependencyCycleViaBridgeChannel) {
  TestbedScenario s(95, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);

  // Hand-built swap: a (ch 0) -> ch 1, b (ch 1) -> ch 0. The compaction
  // planner would never emit this, but the executor must survive it: the
  // moves deadlock unless one connection first vacates via a bridge
  // channel high in the spectrum.
  MigrationPlan plan;
  for (const auto& [id, tgt] : {std::pair{a, 1}, std::pair{b, 0}}) {
    Move m;
    m.id = id;
    m.target = s.controller->connection(id).plan;
    m.target.segments[0].channel = tgt;
    plan.moves.push_back(std::move(m));
  }
  MigrationExecutor executor(&s.engine, s.controller.get(),
                             MigrationExecutor::Params{});
  std::optional<MigrationExecutor::CampaignReport> report;
  executor.run(std::move(plan),
               [&](const MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->aborted);
  EXPECT_EQ(report->cycle_breaks, 1u);
  EXPECT_EQ(report->moves_rolled, 2u);
  EXPECT_EQ(report->rolls_ok, 3u);  // scratch hop + two target rolls
  EXPECT_EQ(report->rolls_failed, 0u);
  EXPECT_EQ(s.controller->connection(a).plan.segments[0].channel, 1);
  EXPECT_EQ(s.controller->connection(b).plan.segments[0].channel, 0);
  EXPECT_EQ(s.controller->connection(a).state,
            core::ConnectionState::kActive);
  EXPECT_EQ(s.controller->connection(b).state,
            core::ConnectionState::kActive);
  const bool a_scratch =
      std::find_if(report->outcomes.begin(), report->outcomes.end(),
                   [&](const auto& o) { return o.via_scratch; }) !=
      report->outcomes.end();
  EXPECT_TRUE(a_scratch);
}

TEST(ReoptCampaign, AbortsCleanlyOnFiberCut) {
  TestbedScenario s(96, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  const auto c = connect_sync(s, s.site_i, s.site_iv);
  disconnect_sync(s, a);

  ReoptService::Params params;
  // Wide spacing: the cut lands between the first and second launch.
  params.executor.launch_spacing = minutes(5);
  params.executor.max_concurrent_rolls = 1;
  ReoptService service(s.controller.get(), params);
  s.engine.schedule(seconds(30),
                    [&] { s.model->fail_link(s.topo.i_ii); });
  std::optional<MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->aborted);
  EXPECT_NE(report->abort_reason.find("topology"), std::string::npos);
  // Whatever had launched finished; everything else was left untouched.
  EXPECT_EQ(report->moves_rolled + report->moves_skipped,
            report->moves_planned);
  for (const auto id : {b, c}) {
    EXPECT_EQ(s.controller->connection(id).state,
              core::ConnectionState::kActive);
    EXPECT_EQ(s.controller->connection(id).total_outage, SimTime{});
  }
}

// --- telemetry & SLO --------------------------------------------------------

TEST(ReoptTelemetry, GaugesAndProbesPublishAfterAnalysis) {
  TestbedScenario s(97, small_config());
  telemetry::Telemetry t(&s.engine);
  s.model->attach_telemetry(&t);
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  (void)b;
  disconnect_sync(s, a);

  ReoptService service(s.controller.get(), {});
  telemetry::GaugeSampler sampler(&s.engine);
  service.install_probes(sampler);
  service.analyze();
  sampler.sample_now();
  const auto* gauge =
      t.metrics().find_gauge("griphon_reopt_fragmentation_mean");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value(), 0.0);
  const auto* series = sampler.series("reopt_fragmentation_mean");
  ASSERT_NE(series, nullptr);
  EXPECT_GT(series->rollup().last, 0.0);
}

TEST(ReoptTelemetry, SloObjectiveFreezesWithoutDataThenTrips) {
  TestbedScenario s(98, small_config());
  ReoptService service(s.controller.get(), {});
  telemetry::SloMonitor monitor(&s.engine);
  telemetry::Objective o = fragmentation_objective(service, 0.01);
  o.trip_after = 1;
  monitor.add_objective(std::move(o));
  // No analysis yet: NaN means "no data", which must freeze the streaks
  // rather than trip the alert.
  EXPECT_EQ(monitor.evaluate_now(), 0u);
  EXPECT_EQ(monitor.evaluate_now(), 0u);
  EXPECT_FALSE(monitor.alerting("reopt_fragmentation"));

  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  (void)b;
  disconnect_sync(s, a);
  service.analyze();
  EXPECT_EQ(monitor.evaluate_now(), 1u);
  EXPECT_TRUE(monitor.alerting("reopt_fragmentation"));
}

// --- concurrency ------------------------------------------------------------

TEST(ReoptConcurrency, SnapshotReadersRaceCampaignSafely) {
  TestbedScenario s(99, small_config());
  const auto a = connect_sync(s, s.site_i, s.site_iv);
  const auto b = connect_sync(s, s.site_i, s.site_iv);
  (void)b;
  disconnect_sync(s, a);

  ReoptService service(s.controller.get(), {});
  service.analyze();  // publishes a snapshot for the readers

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = s.controller->inventory().published_snapshot();
        if (snap != nullptr) {
          std::size_t total = 0;
          for (int ch = 0; ch < 8; ++ch) total += snap->channel_usage(ch);
          reads.fetch_add(1 + (total & 0), std::memory_order_relaxed);
        }
      }
    });
  }
  std::optional<MigrationExecutor::CampaignReport> report;
  service.run_campaign(
      [&](const MigrationExecutor::CampaignReport& r) { report = r; });
  s.engine.run();
  // The sim drains in microseconds of wall clock; make sure the readers
  // actually overlapped it (or at least the post-campaign state) before
  // tearing them down.
  while (reads.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->moves_rolled, 1u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace griphon::reopt
