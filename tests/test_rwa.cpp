// Tests for the controller's resource view (Inventory) and the routing +
// wavelength assignment engine.
#include <gtest/gtest.h>

#include "core/inventory.hpp"
#include "core/network_model.hpp"
#include "core/rwa.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/builders.hpp"

namespace griphon::core {
namespace {

struct RwaFixture : ::testing::Test {
  RwaFixture()
      : topo(topology::paper_testbed()),
        model(&engine, topo.graph, config()),
        inventory(&model),
        rwa(&model, &inventory, RwaEngine::Params{}) {}

  static NetworkModel::Config config() {
    NetworkModel::Config c;
    c.channels = 8;  // small grid so exhaustion is reachable in tests
    c.ots_per_node = 2;
    c.regens_per_node = 1;
    c.with_otn = false;
    return c;
  }

  sim::Engine engine{1};
  topology::Testbed topo;
  NetworkModel model;
  Inventory inventory;
  RwaEngine rwa;
};

TEST_F(RwaFixture, AvailableChannelsStartFull) {
  EXPECT_EQ(inventory.available_on_link(topo.i_iv).size(), 8u);
}

TEST_F(RwaFixture, DeviceStateReducesAvailability) {
  auto& roadm = model.roadm_at(topo.i);
  const auto degree = roadm.degree_for(topo.i_iv).value();
  ASSERT_TRUE(
      roadm.configure_add_drop(model.roadm_port_of_ot(TransponderId{0}),
                               degree, 3)
          .ok());
  const auto avail = inventory.available_on_link(topo.i_iv);
  EXPECT_EQ(avail.size(), 7u);
  EXPECT_FALSE(avail.contains(3));
}

TEST_F(RwaFixture, ReservationsReduceAvailability) {
  inventory.reserve_channel(topo.i_iv, 5);
  EXPECT_FALSE(inventory.available_on_link(topo.i_iv).contains(5));
  inventory.release_channel(topo.i_iv, 5);
  EXPECT_TRUE(inventory.available_on_link(topo.i_iv).contains(5));
}

TEST_F(RwaFixture, FailedLinkHasNoChannels) {
  model.fail_link(topo.i_iv);
  EXPECT_TRUE(inventory.available_on_link(topo.i_iv).empty());
}

TEST_F(RwaFixture, OtPoolAccounting) {
  EXPECT_EQ(inventory.free_ot_count(topo.i, rates::k10G), 2u);
  const auto ot = inventory.find_free_ot(topo.i, rates::k10G);
  ASSERT_TRUE(ot.has_value());
  inventory.reserve_ot(*ot);
  EXPECT_EQ(inventory.free_ot_count(topo.i, rates::k10G), 1u);
  EXPECT_NE(inventory.find_free_ot(topo.i, rates::k10G), ot);
  inventory.release_ot(*ot);
  EXPECT_EQ(inventory.free_ot_count(topo.i, rates::k10G), 2u);
}

TEST_F(RwaFixture, TunedOtsStayInPool) {
  const auto ot = inventory.find_free_ot(topo.i, rates::k10G).value();
  ASSERT_TRUE(model.ot(ot).tune(3).ok());
  EXPECT_TRUE(inventory.find_free_ot(topo.i, rates::k10G).has_value());
  ASSERT_TRUE(model.ot(ot).activate().ok());
  // One of two OTs active: one left.
  EXPECT_EQ(inventory.free_ot_count(topo.i, rates::k10G), 1u);
}

TEST_F(RwaFixture, PlanDirectPath) {
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().hops(), 1u);
  EXPECT_EQ(plan.value().segments.size(), 1u);
  EXPECT_EQ(plan.value().segments[0].channel, 0);  // first-fit
  EXPECT_TRUE(plan.value().regens.empty());
  EXPECT_EQ(model.ot(plan.value().src_ot).site(), topo.i);
  EXPECT_EQ(model.ot(plan.value().dst_ot).site(), topo.iv);
}

TEST_F(RwaFixture, PlanAvoidsExcludedLinks) {
  Exclusions avoid;
  avoid.links.insert(topo.i_iv);
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G, avoid);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().hops(), 2u);
  EXPECT_FALSE(plan.value().path.uses_link(topo.i_iv));
}

TEST_F(RwaFixture, RouteCacheInvalidatedOnFailureAndRepair) {
  ASSERT_EQ(rwa.plan(topo.i, topo.iv, rates::k10G).value().hops(), 1u);
  // Second call hits the per-pair route cache; same answer.
  ASSERT_EQ(rwa.plan(topo.i, topo.iv, rates::k10G).value().hops(), 1u);
  model.fail_link(topo.i_iv);
  const auto rerouted = rwa.plan(topo.i, topo.iv, rates::k10G);
  ASSERT_TRUE(rerouted.ok());
  EXPECT_FALSE(rerouted.value().path.uses_link(topo.i_iv));
  model.repair_link(topo.i_iv);
  EXPECT_EQ(rwa.plan(topo.i, topo.iv, rates::k10G).value().hops(), 1u);
}

TEST_F(RwaFixture, PlanHonorsWavelengthContinuity) {
  // Block channel 0 on I-III only: a 2-hop I-III-IV plan must then pick a
  // channel free on BOTH links.
  auto& roadm = model.roadm_at(topo.iii);
  const auto d = roadm.degree_for(topo.i_iii).value();
  const auto ports = roadm.add_ports(1);
  ASSERT_TRUE(roadm.configure_add_drop(ports[0], d, 0).ok());
  Exclusions avoid;
  avoid.links.insert(topo.i_iv);
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G, avoid);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().segments.size(), 1u);
  EXPECT_EQ(plan.value().segments[0].channel, 1);  // 0 is discontinuous
}

TEST_F(RwaFixture, FallsBackToAlternateRouteWhenSpectrumFull) {
  // Exhaust all 8 channels on the direct I-IV link.
  auto& ri = model.roadm_at(topo.i);
  auto& riv = model.roadm_at(topo.iv);
  const auto di = ri.degree_for(topo.i_iv).value();
  const auto div = riv.degree_for(topo.i_iv).value();
  const auto pi = ri.add_ports(8);
  const auto piv = riv.add_ports(8);
  for (int ch = 0; ch < 8; ++ch) {
    ASSERT_TRUE(ri.configure_add_drop(pi[ch], di, ch).ok());
    ASSERT_TRUE(riv.configure_add_drop(piv[ch], div, ch).ok());
  }
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan.value().hops(), 1u);  // routed around the full link
}

TEST_F(RwaFixture, NoOtMeansResourceExhausted) {
  inventory.reserve_ot(TransponderId{0});
  inventory.reserve_ot(TransponderId{1});  // both OTs at node I
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), ErrorCode::kResourceExhausted);
}

TEST_F(RwaFixture, SrcEqualsDstRejected) {
  const auto plan = rwa.plan(topo.i, topo.i, rates::k10G);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), ErrorCode::kInvalidArgument);
}

TEST(RwaBackbone, LongPathGetsRegens) {
  sim::Engine engine{1};
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.regens_per_node = 4;
  NetworkModel model(&engine, topology::us_backbone(), cfg);
  Inventory inv(&model);
  RwaEngine rwa(&model, &inv, RwaEngine::Params{});
  const auto& g = model.graph();
  const auto plan = rwa.plan(*g.find_node("Seattle"),
                             *g.find_node("Princeton"), rates::k10G);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_GE(plan.value().segments.size(), 2u);
  EXPECT_EQ(plan.value().regens.size(), plan.value().segments.size() - 1);
  // Segments may change wavelength at regen sites but each segment's
  // channel must be valid and links must be covered exactly once.
  std::size_t covered = 0;
  for (const auto& seg : plan.value().segments) {
    EXPECT_NE(seg.channel, dwdm::kNoChannel);
    covered += seg.last_link - seg.first_link + 1;
  }
  EXPECT_EQ(covered, plan.value().path.links.size());
}

TEST(RwaPolicy, MostUsedPacksHotChannels) {
  sim::Engine engine{1};
  auto topo = topology::paper_testbed();
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  NetworkModel model(&engine, topo.graph, cfg);
  Inventory inv(&model);
  // Pre-occupy channel 2 on an unrelated link (II-III) so it becomes the
  // network's "hottest" wavelength.
  auto& r2 = model.roadm_at(topo.ii);
  const auto d = r2.degree_for(topo.ii_iii).value();
  const auto ports = r2.add_ports(1);
  ASSERT_TRUE(r2.configure_add_drop(ports[0], d, 2).ok());

  RwaEngine::Params most_used;
  most_used.policy = WavelengthPolicy::kMostUsed;
  RwaEngine rwa(&model, &inv, most_used);
  const auto plan = rwa.plan(topo.i, topo.iv, rates::k10G);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().segments[0].channel, 2);  // reuse the hot channel

  RwaEngine::Params first_fit;  // contrast: first-fit takes channel 0
  RwaEngine rwa_ff(&model, &inv, first_fit);
  EXPECT_EQ(rwa_ff.plan(topo.i, topo.iv, rates::k10G)
                .value()
                .segments[0]
                .channel,
            0);
}

// Property: over many random plans on the backbone, every plan satisfies
// the core RWA invariants.
class RwaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwaProperty, PlansSatisfyInvariants) {
  sim::Engine engine{GetParam()};
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.regens_per_node = 4;
  NetworkModel model(&engine, topology::us_backbone(), cfg);
  Inventory inv(&model);
  RwaEngine rwa(&model, &inv, RwaEngine::Params{});
  auto& rng = engine.rng();
  const auto n = static_cast<int>(model.graph().nodes().size());
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId src{static_cast<std::uint64_t>(rng.uniform_int(0, n - 1))};
    const NodeId dst{static_cast<std::uint64_t>(rng.uniform_int(0, n - 1))};
    if (src == dst) continue;
    const auto plan = rwa.plan(src, dst, rates::k10G);
    if (!plan.ok()) continue;
    const auto& p = plan.value();
    // Path endpoints match.
    EXPECT_EQ(p.path.nodes.front(), src);
    EXPECT_EQ(p.path.nodes.back(), dst);
    // Segment channels are available on every segment link.
    for (const auto& seg : p.segments) {
      for (std::size_t j = seg.first_link; j <= seg.last_link; ++j)
        EXPECT_TRUE(
            inv.available_on_link(p.path.links[j]).contains(seg.channel));
    }
    // Regens sit at the right sites.
    for (std::size_t b = 0; b < p.regens.size(); ++b) {
      const NodeId site = p.path.nodes[p.segments[b].last_link + 1];
      EXPECT_EQ(model.regen(p.regens[b]).site(), site);
    }
    // Transparent segments respect reach.
    for (const auto& seg : p.segments) {
      topology::Path sub;
      sub.nodes.assign(
          p.path.nodes.begin() + static_cast<long>(seg.first_link),
          p.path.nodes.begin() + static_cast<long>(seg.last_link) + 2);
      sub.links.assign(
          p.path.links.begin() + static_cast<long>(seg.first_link),
          p.path.links.begin() + static_cast<long>(seg.last_link) + 1);
      EXPECT_TRUE(
          model.reach().feasible(model.graph(), sub,
                                 dwdm::profile_for(rates::k10G)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwaProperty, ::testing::Values(2, 4, 6, 8));

TEST_F(RwaFixture, RouteCacheKeysOnExclusions) {
  telemetry::Telemetry tel(&engine);
  model.attach_telemetry(&tel);
  const auto hits = [&] {
    return tel.metrics()
        .find_counter("griphon_rwa_route_cache_hits_total")
        ->value();
  };
  const auto misses = [&] {
    return tel.metrics()
        .find_counter("griphon_rwa_route_cache_misses_total")
        ->value();
  };

  // First query for the bare pair: a miss.
  (void)rwa.candidate_routes(topo.i, topo.iv);
  EXPECT_EQ(misses(), 1u);
  EXPECT_EQ(hits(), 0u);

  // Same pair, same (empty) exclusions: a hit, same candidate list.
  const auto& bare = rwa.candidate_routes(topo.i, topo.iv);
  EXPECT_EQ(misses(), 1u);
  EXPECT_EQ(hits(), 1u);

  // Same pair under an exclusion: a distinct cache entry (miss), and the
  // excluded link is honored.
  Exclusions avoid;
  avoid.links.insert(topo.i_iv);
  const auto& constrained = rwa.candidate_routes(topo.i, topo.iv, avoid);
  EXPECT_EQ(misses(), 2u);
  EXPECT_EQ(hits(), 1u);
  for (const auto& path : constrained)
    EXPECT_FALSE(path.uses_link(topo.i_iv));
  EXPECT_NE(bare.front().links, constrained.front().links);

  // Both entries now resolve from the cache independently.
  (void)rwa.candidate_routes(topo.i, topo.iv);
  (void)rwa.candidate_routes(topo.i, topo.iv, avoid);
  EXPECT_EQ(misses(), 2u);
  EXPECT_EQ(hits(), 3u);

  // A topology change invalidates every entry, exclusion-keyed or not.
  model.fail_link(topo.i_iii);
  (void)rwa.candidate_routes(topo.i, topo.iv, avoid);
  EXPECT_EQ(misses(), 3u);
  model.attach_telemetry(nullptr);
}

TEST_F(RwaFixture, FailureEvictsOnlyRoutesTraversingCutLink) {
  // k=1 keeps each pair's cached candidate set to its shortest route, so
  // pairs have disjoint footprints and selective eviction is observable.
  RwaEngine narrow(&model, &inventory,
                   RwaEngine::Params{WavelengthPolicy::kFirstFit, 1});
  telemetry::Telemetry tel(&engine);
  model.attach_telemetry(&tel);
  const auto counter = [&](const char* name) {
    const auto* c = tel.metrics().find_counter(name);
    return c == nullptr ? 0u : c->value();
  };
  const auto hits = [&] {
    return counter("griphon_rwa_route_cache_hits_total");
  };
  const auto evictions = [&] {
    return counter("griphon_rwa_route_cache_evicted_total");
  };

  (void)narrow.candidate_routes(topo.i, topo.iv);    // route: [i_iv]
  (void)narrow.candidate_routes(topo.i, topo.iii);   // route: [i_iii]
  (void)narrow.candidate_routes(topo.ii, topo.iii);  // route: [ii_iii]
  EXPECT_EQ(hits(), 0u);

  // A cut on I-IV touches exactly one cached entry. The survivors keep
  // answering from the cache — the hit rate no longer collapses to zero
  // on every unrelated failure.
  model.fail_link(topo.i_iv);
  (void)narrow.candidate_routes(topo.i, topo.iii);
  (void)narrow.candidate_routes(topo.ii, topo.iii);
  EXPECT_EQ(hits(), 2u);
  EXPECT_EQ(evictions(), 1u);
  // The evicted pair recomputes around the cut.
  const auto& rerouted = narrow.candidate_routes(topo.i, topo.iv);
  ASSERT_FALSE(rerouted.empty());
  EXPECT_FALSE(rerouted.front().uses_link(topo.i_iv));
  EXPECT_EQ(hits(), 2u);

  // Repair restores capacity everywhere: anything cached might be
  // improvable, so the whole cache drops (no eviction counter — this is
  // the full-clear path).
  model.repair_link(topo.i_iv);
  (void)narrow.candidate_routes(topo.i, topo.iii);
  EXPECT_EQ(hits(), 2u);
  EXPECT_EQ(evictions(), 1u);
  EXPECT_EQ(narrow.candidate_routes(topo.i, topo.iv).front().hops(), 1u);
  model.attach_telemetry(nullptr);
}

}  // namespace
}  // namespace griphon::core
