// Tests for the canned scenarios and the plant assembly (NetworkModel):
// wiring invariants that everything else builds on.
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace griphon::core {
namespace {

TEST(TestbedScenario, MatchesPaperPlant) {
  TestbedScenario s(1);
  const auto& g = s.model->graph();
  EXPECT_EQ(g.nodes().size(), 4u);
  EXPECT_EQ(g.links().size(), 5u);
  // One ROADM per node, with a degree per incident link.
  for (const auto& node : g.nodes()) {
    EXPECT_EQ(s.model->roadm_at(node.id).degree_count(),
              g.links_at(node.id).size());
  }
  // Three customer premises, each with a 4x10G NTE.
  EXPECT_EQ(s.model->customer_sites().size(), 3u);
  for (const auto& site : s.model->customer_sites()) {
    EXPECT_EQ(site.customer, s.csp);
    EXPECT_EQ(s.model->nte(site.nte).ports_in_use(), 0u);
  }
  // OTN carriers pre-provisioned over every span.
  EXPECT_EQ(s.model->otn().carriers().size(), g.links().size());
}

TEST(TestbedScenario, FxcWiringIsComplete) {
  TestbedScenario s(2);
  // Every OT's client side and every NTE channel must be patched into the
  // FXC at its PoP; otherwise setups would assert.
  for (const auto& ot : s.model->ots()) {
    const auto port = s.model->fxc_at(ot->site()).port_for(
        fxc::Wiring::Kind::kTransponderClient, ot->id().value(), 0);
    EXPECT_TRUE(port.has_value()) << ot->name();
  }
  for (const auto& site : s.model->customer_sites()) {
    for (std::size_t ch = 0; ch < dwdm::Muxponder::kClientPorts; ++ch) {
      const auto port = s.model->fxc_at(site.core_pop)
                            .port_for(fxc::Wiring::Kind::kCustomerAccess,
                                      site.nte.value(), ch);
      EXPECT_TRUE(port.has_value()) << site.name << " ch " << ch;
    }
  }
}

TEST(TestbedScenario, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    TestbedScenario s(seed);
    double setup = -1;
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok())
                          setup = to_seconds(
                              s.controller->connection(r.value())
                                  .setup_duration);
                      });
    s.engine.run();
    return setup;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(BackboneScenario, SitesSpreadAcrossCustomersAndPops) {
  BackboneScenario::Options opt;
  opt.customers = 3;
  opt.sites_per_customer = 3;
  BackboneScenario s(3, opt);
  EXPECT_EQ(s.portals.size(), 3u);
  EXPECT_EQ(s.sites.size(), 9u);
  // site(c, i) indexes into the right customer's block.
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto* site = s.model->site_by_nte(s.site(c, i));
      ASSERT_NE(site, nullptr);
      EXPECT_EQ(site->customer, CustomerId{c + 1});
    }
  }
  EXPECT_THROW((void)s.site(3, 0), std::out_of_range);
  // One customer's sites land on distinct PoPs (they are data centers).
  std::set<NodeId> pops;
  for (std::size_t i = 0; i < 3; ++i)
    pops.insert(s.model->site_by_nte(s.site(0, i))->core_pop);
  EXPECT_EQ(pops.size(), 3u);
}

TEST(NetworkModel, FailureInjectionIsIdempotent) {
  TestbedScenario s(4);
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iv);  // second cut of a cut link: no-op
  EXPECT_TRUE(s.model->link_failed(s.topo.i_iv));
  EXPECT_EQ(s.model->failed_links().size(), 1u);
  s.model->repair_link(s.topo.i_iv);
  s.model->repair_link(s.topo.i_iv);
  EXPECT_FALSE(s.model->link_failed(s.topo.i_iv));
  EXPECT_TRUE(s.model->failed_links().empty());
}

TEST(NetworkModel, EquipmentPoolsFollowConfig) {
  sim::Engine engine(5);
  NetworkModel::Config cfg;
  cfg.ots_per_node = 3;
  cfg.ots_40g_per_node = 1;
  cfg.regens_per_node = 2;
  cfg.regens_40g_per_node = 1;
  NetworkModel model(&engine, topology::paper_testbed().graph, cfg);
  EXPECT_EQ(model.ots().size(), 4u * (3 + 1));
  EXPECT_EQ(model.regens().size(), 4u * (2 + 1));
  std::size_t forty = 0;
  for (const auto& ot : model.ots())
    if (ot->line_rate() == rates::k40G) ++forty;
  EXPECT_EQ(forty, 4u);
}

}  // namespace
}  // namespace griphon::core
