// Unit tests for the discrete-event engine and trace log.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace griphon::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime{});
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, AdvancesToEventTime) {
  Engine e;
  SimTime seen{};
  e.schedule(seconds(5), [&]() { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, seconds(5));
  EXPECT_EQ(e.now(), seconds(5));
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(seconds(3), [&]() { order.push_back(3); });
  e.schedule(seconds(1), [&]() { order.push_back(1); });
  e.schedule(seconds(2), [&]() { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule(seconds(1), [&order, i]() { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  std::vector<SimTime> at;
  e.schedule(seconds(1), [&]() {
    at.push_back(e.now());
    e.schedule(seconds(1), [&]() { at.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[1], seconds(2));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  e.schedule(seconds(5), [&]() {
    e.schedule(seconds(-3), [&]() { EXPECT_EQ(e.now(), seconds(5)); });
  });
  e.run();
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const auto h = e.schedule(seconds(1), [&]() { fired = true; });
  e.cancel(h);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine e;
  const auto h = e.schedule(seconds(1), []() {});
  e.run();
  e.cancel(h);  // must not crash or corrupt
  e.schedule(seconds(1), []() {});
  EXPECT_EQ(e.run(), 1u);
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const auto h = e.schedule(seconds(1), []() {});
  e.schedule(seconds(2), []() {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(h);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(seconds(1), [&]() { ++fired; });
  e.schedule(seconds(10), [&]() { ++fired; });
  const auto n = e.run_until(seconds(5));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), seconds(5));
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesDeadlineInstant) {
  Engine e;
  bool fired = false;
  e.schedule(seconds(5), [&]() { fired = true; });
  e.run_until(seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilCancelledHeadDoesNotAdmitLaterEvents) {
  // Regression: a cancelled event inside the horizon sat at the queue
  // head; run_until's deadline check passed, and pop_one() then skipped
  // the cancelled entry and fired the next live event — far beyond the
  // deadline.
  Engine e;
  bool fired = false;
  const auto h = e.schedule(seconds(1), []() {});
  e.schedule(seconds(100), [&]() { fired = true; });
  e.cancel(h);
  const auto n = e.run_until(seconds(5));
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), seconds(5));
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), seconds(100));
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule(seconds(1), [&]() { ++fired; });
  e.schedule(seconds(2), [&]() { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunReturnsEventCount) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule(seconds(i), []() {});
  EXPECT_EQ(e.run(), 7u);
  EXPECT_EQ(e.fired(), 7u);
}

TEST(Engine, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Engine e(seed);
    std::vector<double> draws;
    for (int i = 0; i < 5; ++i) draws.push_back(e.rng().uniform(0, 1));
    return draws;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(Trace, RecordsInOrder) {
  Trace t;
  t.emit(seconds(1), TraceLevel::kInfo, "a", "x");
  t.emit(seconds(2), TraceLevel::kWarn, "b", "y", "detail");
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].event, "x");
  EXPECT_EQ(t.records()[1].detail, "detail");
}

TEST(Trace, CountsByEvent) {
  Trace t;
  t.emit(seconds(1), TraceLevel::kInfo, "a", "setup");
  t.emit(seconds(2), TraceLevel::kInfo, "a", "setup");
  t.emit(seconds(3), TraceLevel::kInfo, "a", "teardown");
  EXPECT_EQ(t.count("setup"), 2u);
  EXPECT_EQ(t.count("teardown"), 1u);
  EXPECT_EQ(t.count("missing"), 0u);
}

TEST(Trace, MinLevelFilters) {
  Trace t;
  t.set_min_level(TraceLevel::kWarn);
  t.emit(seconds(1), TraceLevel::kDebug, "a", "quiet");
  t.emit(seconds(1), TraceLevel::kError, "a", "loud");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].event, "loud");
}

TEST(Trace, JsonExportIsWellFormedAndEscaped) {
  Trace t;
  t.emit(milliseconds(1500), TraceLevel::kInfo, "controller", "setup-done",
         "path \"I-IV\"\nline2");
  t.emit(seconds(2), TraceLevel::kWarn, "plant", "fiber-cut", "");
  const std::string json = t.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
  EXPECT_NE(json.find("\"t\":1.500000"), std::string::npos);
  EXPECT_NE(json.find("\"actor\":\"controller\""), std::string::npos);
  EXPECT_NE(json.find("\\\"I-IV\\\""), std::string::npos);  // escaped quotes
  EXPECT_NE(json.find("\\n"), std::string::npos);          // escaped newline
  EXPECT_EQ(json.find('\n'), std::string::npos);            // no raw newlines
  EXPECT_NE(json.find("\"level\":\"WARN\""), std::string::npos);
}

TEST(Trace, JsonEmptyTrace) {
  Trace t;
  EXPECT_EQ(t.to_json(), "{\"dropped\":0,\"records\":[]}");
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.emit(seconds(1), TraceLevel::kInfo, "a", "x");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, JsonEscapesControlCharacters) {
  Trace t;
  t.emit(seconds(1), TraceLevel::kInfo, "a", "evt",
         std::string("bell\x07tab\tend"));
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  for (const char c : json)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Trace, UnboundedByDefault) {
  Trace t;
  for (int i = 0; i < 100; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "e");
  EXPECT_EQ(t.capacity(), 0u);
  EXPECT_EQ(t.records().size(), 100u);
  EXPECT_EQ(t.dropped_count(), 0u);
}

TEST(Trace, RingKeepsNewestInOrder) {
  Trace t;
  t.set_capacity(3);
  for (int i = 0; i < 10; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "e" + std::to_string(i));
  ASSERT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.records()[0].event, "e7");
  EXPECT_EQ(t.records()[1].event, "e8");
  EXPECT_EQ(t.records()[2].event, "e9");
  // 10 emits + 1 ring-full warning into a ring of 3: 8 evicted.
  EXPECT_EQ(t.dropped_count(), 8u);
  // Emitting after a read (which normalizes the ring) keeps order right.
  t.emit(seconds(10), TraceLevel::kInfo, "a", "e10");
  ASSERT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.records()[0].event, "e8");
  EXPECT_EQ(t.records()[2].event, "e10");
  EXPECT_EQ(t.dropped_count(), 9u);
}

TEST(Trace, FirstOverflowEmitsOneWarning) {
  Trace t;
  t.set_capacity(4);
  for (int i = 0; i < 20; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "e" + std::to_string(i));
  // Exactly one ring-full warning for the whole overflow run — it rode
  // the ring itself (and may since have been evicted), never repeating.
  std::size_t warned = 0;
  for (const auto& r : t.records())
    if (r.event == "ring-full") ++warned;
  EXPECT_LE(warned, 1u);
  EXPECT_EQ(t.dropped_count(), 17u);  // 20 emits + 1 warning - 4 retained

  // A fresh overflow run after clear() warns again.
  t.clear();
  EXPECT_EQ(t.dropped_count(), 0u);
  for (int i = 0; i < 5; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "x");
  EXPECT_EQ(t.count("ring-full"), 1u);
  EXPECT_NE(t.to_json().find("\"dropped\":2"), std::string::npos);
}

TEST(Trace, ShrinkingCapacityDropsOldest) {
  Trace t;
  for (int i = 0; i < 5; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "e" + std::to_string(i));
  t.set_capacity(2);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].event, "e3");
  EXPECT_EQ(t.records()[1].event, "e4");
  EXPECT_EQ(t.dropped_count(), 3u);
}

TEST(Trace, RingJsonAndCountSeeOnlyRetained) {
  Trace t;
  t.set_capacity(2);
  for (int i = 0; i < 4; ++i)
    t.emit(seconds(i), TraceLevel::kInfo, "a", "e" + std::to_string(i));
  // Retained: the ring-full warning (emitted on the first eviction, then
  // aged like any record) and e3; the dump's `dropped` makes the
  // truncation visible.
  EXPECT_EQ(t.count("e0"), 0u);
  EXPECT_EQ(t.count("e3"), 1u);
  EXPECT_EQ(t.count("ring-full"), 1u);
  const std::string json = t.to_json();
  EXPECT_EQ(json.find("e0"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":3"), std::string::npos);
  EXPECT_LT(json.find("ring-full"), json.find("e3"));  // oldest first
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.dropped_count(), 0u);
  EXPECT_EQ(t.capacity(), 2u);  // clear keeps the bound
}

// Property: however events are scheduled (random times, random nesting),
// observed firing times are monotonically nondecreasing.
class EngineOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOrderProperty, TimeNeverGoesBackwards) {
  Engine e(GetParam());
  std::vector<SimTime> observed;
  std::function<void(int)> spawn = [&](int depth) {
    observed.push_back(e.now());
    if (depth <= 0) return;
    const int children = static_cast<int>(e.rng().uniform_int(0, 3));
    for (int i = 0; i < children; ++i) {
      e.schedule(from_seconds(e.rng().uniform(0, 10)),
                 [&spawn, depth]() { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 5; ++i)
    e.schedule(from_seconds(e.rng().uniform(0, 10)),
               [&spawn]() { spawn(3); });
  e.run();
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_LE(observed[i - 1], observed[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrderProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace griphon::sim
