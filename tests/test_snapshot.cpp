// Inventory::Snapshot: versioned copy-on-publish read view (DESIGN.md §15).
//
// Two layers of coverage:
//  * single-threaded semantics — a snapshot agrees with the live queries
//    it mirrors, republish happens only when something actually moved,
//    and the version stamps (plant/topology/device/publish_seq) advance
//    exactly with their triggers;
//  * multi-threaded publish atomicity — reader threads loop over
//    published_snapshot() while the owner thread churns reservations,
//    link failures and OT state. A sentinel channel is reserved across a
//    group of links strictly between publishes, so every published view
//    must show it excluded on ALL of the group's links or NONE — a reader
//    observing a half-applied group means a torn publish. Run under TSan
//    in CI (std::thread is test-only; src/ uses the annotated wrappers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/inventory.hpp"
#include "core/network_model.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"

namespace griphon::core {
namespace {

NetworkModel::Config small_config() {
  NetworkModel::Config c;
  c.channels = 16;
  c.ots_per_node = 3;
  c.ots_40g_per_node = 1;
  c.regens_per_node = 2;
  c.with_otn = false;
  return c;
}

struct SnapshotFixture {
  SnapshotFixture()
      : engine(7),
        model(&engine, topology::paper_testbed().graph, small_config()),
        inventory(&model) {}

  sim::Engine engine;
  NetworkModel model;
  Inventory inventory;
};

TEST(InventorySnapshot, AgreesWithLiveQueries) {
  SnapshotFixture f;
  f.inventory.reserve_channel(LinkId{0}, 3);
  f.inventory.reserve_channel(LinkId{1}, 5);
  const auto ot = f.inventory.find_free_ot(NodeId{0}, rates::k10G);
  ASSERT_TRUE(ot.has_value());
  f.inventory.reserve_ot(*ot);

  const auto snap = f.inventory.snapshot();
  ASSERT_NE(snap, nullptr);
  for (const auto& link : f.model.graph().links())
    EXPECT_EQ(snap->available_on_link(link.id),
              f.inventory.available_on_link(link.id))
        << "link " << link.id.value();
  for (const auto& node : f.model.graph().nodes()) {
    for (const DataRate rate : {rates::k10G, rates::k40G}) {
      EXPECT_EQ(snap->find_free_ot(node.id, rate),
                f.inventory.find_free_ot(node.id, rate));
      EXPECT_EQ(snap->free_ot_count(node.id, rate),
                f.inventory.free_ot_count(node.id, rate));
      EXPECT_EQ(snap->find_free_regen(node.id, rate),
                f.inventory.find_free_regen(node.id, rate));
      EXPECT_EQ(snap->free_regen_count(node.id, rate),
                f.inventory.free_regen_count(node.id, rate));
    }
  }
  for (dwdm::ChannelIndex ch = 0;
       ch < static_cast<dwdm::ChannelIndex>(f.model.grid().count()); ++ch)
    EXPECT_EQ(snap->channel_usage(ch), f.inventory.channel_usage(ch));
  EXPECT_EQ(snap->reservations(), f.inventory.reservations());
}

TEST(InventorySnapshot, RepublishesOnlyOnChange) {
  SnapshotFixture f;
  const auto s1 = f.inventory.snapshot();
  const auto s2 = f.inventory.snapshot();
  EXPECT_EQ(s1, s2) << "no change -> same immutable object";
  EXPECT_EQ(s1->publish_seq(), s2->publish_seq());

  f.inventory.reserve_channel(LinkId{0}, 0);
  const auto s3 = f.inventory.snapshot();
  EXPECT_NE(s3, s2);
  EXPECT_GT(s3->publish_seq(), s2->publish_seq());

  // Releasing a never-reserved channel is a no-op: no republish.
  f.inventory.release_channel(LinkId{0}, 9);
  const auto s4 = f.inventory.snapshot();
  EXPECT_EQ(s4, s3);
}

TEST(InventorySnapshot, VersionStampsTrackTheirTriggers) {
  SnapshotFixture f;
  const auto s0 = f.inventory.snapshot();

  // Topology: fiber cut moves topology_version, and the failed link
  // publishes as empty.
  f.model.fail_link(LinkId{2});
  const auto s1 = f.inventory.snapshot();
  EXPECT_GT(s1->topology_version(), s0->topology_version());
  EXPECT_TRUE(s1->available_on_link(LinkId{2}).empty());
  f.model.repair_link(LinkId{2});
  const auto s2 = f.inventory.snapshot();
  EXPECT_GT(s2->topology_version(), s1->topology_version());
  EXPECT_FALSE(s2->available_on_link(LinkId{2}).empty());

  // Device: an OT lifecycle transition moves device_version and the OT
  // leaves the snapshot's free pool.
  const auto ot = s2->find_free_ot(NodeId{0}, rates::k10G);
  ASSERT_TRUE(ot.has_value());
  ASSERT_TRUE(f.model.ot(*ot).tune(0).ok());
  ASSERT_TRUE(f.model.ot(*ot).activate().ok());
  const auto s3 = f.inventory.snapshot();
  EXPECT_GT(s3->device_version(), s2->device_version());
  EXPECT_NE(s3->find_free_ot(NodeId{0}, rates::k10G), ot);
  ASSERT_TRUE(f.model.ot(*ot).deactivate().ok());
  ASSERT_TRUE(f.model.ot(*ot).reset().ok());
  const auto s4 = f.inventory.snapshot();
  EXPECT_GT(s4->device_version(), s3->device_version());

  EXPECT_GT(s4->publish_seq(), s0->publish_seq());
}

TEST(InventorySnapshot, PublishedSnapshotNeverReadsTheModel) {
  SnapshotFixture f;
  EXPECT_EQ(f.inventory.published_snapshot(), nullptr)
      << "nothing published before the first snapshot()";
  const auto s1 = f.inventory.snapshot();
  EXPECT_EQ(f.inventory.published_snapshot(), s1);

  // Model churn without a snapshot() call: the published view must stay
  // the old (stale but internally consistent) one.
  f.model.fail_link(LinkId{0});
  EXPECT_EQ(f.inventory.published_snapshot(), s1);
  EXPECT_FALSE(s1->available_on_link(LinkId{0}).empty());
  f.model.repair_link(LinkId{0});
}

// --- multi-threaded publish atomicity --------------------------------------

TEST(InventorySnapshot, ReadersNeverObserveHalfPublishedState) {
  SnapshotFixture f;
  constexpr dwdm::ChannelIndex kSentinel = 7;
  constexpr std::size_t kGroup = 3;  // sentinel reserved on links 0..2
  constexpr int kIterations = 2000;
  const std::size_t n_links = f.model.graph().links().size();
  ASSERT_GE(n_links, kGroup + 2);

  // Prime: sentinel available on the whole group at start.
  const auto s0 = f.inventory.snapshot();
  for (std::size_t l = 0; l < kGroup; ++l)
    ASSERT_TRUE(s0->available_on_link(LinkId{l}).contains(kSentinel));

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> non_monotonic{0};
  std::atomic<std::uint64_t> reads{0};

  auto reader = [&] {
    std::uint64_t last_seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = f.inventory.published_snapshot();
      if (snap == nullptr) continue;
      if (snap->publish_seq() < last_seq) ++non_monotonic;
      last_seq = snap->publish_seq();
      std::size_t excluded = 0;
      for (std::size_t l = 0; l < kGroup; ++l)
        if (!snap->available_on_link(LinkId{l}).contains(kSentinel))
          ++excluded;
      if (excluded != 0 && excluded != kGroup) ++torn;
      ++reads;
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  // Make sure the readers are actually running before churning, and keep
  // churning until they have observed a meaningful number of views —
  // otherwise a fast writer finishes before the first read and the
  // invariant is checked against nothing.
  while (reads.load() == 0) std::this_thread::yield();

  // Owner thread: all-or-nothing sentinel groups with noise in between.
  // Publishes happen only at group boundaries, so a view with a partial
  // group is a torn publish by construction.
  constexpr std::uint64_t kMinReads = 20000;
  constexpr int kMaxIterations = 400000;  // starvation backstop
  for (int iter = 0;
       iter < kIterations ||
       (reads.load() < kMinReads && iter < kMaxIterations);
       ++iter) {
    for (std::size_t l = 0; l < kGroup; ++l)
      f.inventory.reserve_channel(LinkId{l}, kSentinel);
    (void)f.inventory.snapshot();

    // Noise: other channels/links, OT reservations, device churn and a
    // fiber cut on a non-group link — none may disturb the invariant.
    const auto noise_link = LinkId{kGroup + (iter % (n_links - kGroup))};
    const auto noise_ch =
        static_cast<dwdm::ChannelIndex>((kSentinel + 1 + iter) % 16);
    f.inventory.reserve_channel(noise_link, noise_ch);
    if (iter % 7 == 0) {
      if (const auto ot = f.inventory.find_free_ot(NodeId{1}, rates::k10G))
        f.inventory.reserve_ot(*ot);
    }
    if (iter % 13 == 0) f.model.fail_link(noise_link);
    (void)f.inventory.snapshot();
    if (iter % 13 == 0) f.model.repair_link(noise_link);
    f.inventory.release_channel(noise_link, noise_ch);
    (void)f.inventory.snapshot();

    for (std::size_t l = 0; l < kGroup; ++l)
      f.inventory.release_channel(LinkId{l}, kSentinel);
    (void)f.inventory.snapshot();
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0)
      << "a reader saw the sentinel group half-applied";
  EXPECT_EQ(non_monotonic.load(), 0)
      << "publish_seq went backwards for a reader";
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace griphon::core
