// Long-horizon soak test.
//
// Days of randomized operations on the US backbone — connects at mixed
// rates and protections, disconnects, fiber cuts and repairs, maintenance
// windows, re-grooming — then a full drain. Invariants checked at the
// end: after every connection is released, no device in the plant holds
// any configuration, no slots or ports leak, and the controller's books
// balance.
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace griphon::core {
namespace {

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, RandomOperationsThenCleanDrain) {
  BackboneScenario::Options opt;
  opt.customers = 2;
  opt.sites_per_customer = 3;
  opt.quota = DataRate::gbps(500);
  opt.config.ots_per_node = 8;
  opt.config.regens_per_node = 6;
  BackboneScenario s(GetParam(), opt);
  // Days of operations emit an unbounded trace; bound it to a ring so the
  // soak cannot grow memory without limit (the invariants below don't read
  // the trace).
  s.model->trace().set_capacity(4096);
  Rng rng(GetParam() * 31 + 7);

  std::vector<std::pair<std::size_t, ConnectionId>> live;  // (customer, id)
  std::set<LinkId> cut_links;
  int setups_attempted = 0;

  const auto num_links = s.model->graph().links().size();
  for (int round = 0; round < 60; ++round) {
    const double dice = rng.uniform(0, 1);
    if (dice < 0.45) {
      // Connect: random customer, random distinct site pair, random rate.
      const auto cust =
          static_cast<std::size_t>(rng.uniform_int(0, 1));
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, 2));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (a == b) b = (b + 1) % 3;
      static const DataRate kRates[] = {rates::k1G, DataRate::gbps(3),
                                        rates::k10G};
      static const ProtectionMode kProt[] = {ProtectionMode::kUnprotected,
                                             ProtectionMode::kRestorable};
      ++setups_attempted;
      s.portals[cust]->connect(
          s.site(cust, a), s.site(cust, b),
          kRates[rng.uniform_int(0, 2)], kProt[rng.uniform_int(0, 1)],
          [&live, cust](Result<ConnectionId> r) {
            if (r.ok()) live.emplace_back(cust, r.value());
          });
    } else if (dice < 0.6 && !live.empty()) {
      // Disconnect a random live connection (may be refused if busy).
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      const auto [cust, id] = live[at];
      s.portals[cust]->disconnect(id, [&live, id = id](Status st) {
        if (st.ok())
          std::erase_if(live, [&](const auto& e) { return e.second == id; });
      });
    } else if (dice < 0.72 && cut_links.size() < 2) {
      // Cut a random link (at most two concurrent cuts).
      const LinkId link{static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<int>(num_links) - 1))};
      if (!s.model->link_failed(link)) {
        s.model->fail_link(link);
        cut_links.insert(link);
      }
    } else if (dice < 0.85 && !cut_links.empty()) {
      // Repair one cut.
      const LinkId link = *cut_links.begin();
      cut_links.erase(cut_links.begin());
      s.model->repair_link(link);
    } else if (dice < 0.93) {
      // Maintenance on a random healthy link.
      const LinkId link{static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<int>(num_links) - 1))};
      if (!s.model->link_failed(link))
        s.controller->prepare_maintenance(link, [](Status) {});
    } else if (!live.empty()) {
      // Re-groom someone.
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      s.controller->regroom(live[at].second, [](Status) {});
    }
    // Let a random slice of time pass (often enough for flows to finish).
    s.engine.run_until(s.engine.now() +
                       from_seconds(rng.uniform(30, 600)));
  }

  // Repair everything and let all machinery settle.
  for (const LinkId link : cut_links) s.model->repair_link(link);
  s.engine.run();
  ASSERT_GT(setups_attempted, 10);

  // Drain: release every remaining connection (retrying the busy ones).
  for (int attempt = 0; attempt < 5 && !live.empty(); ++attempt) {
    auto remaining = live;
    for (const auto& [cust, id] : remaining) {
      s.portals[cust]->disconnect(id, [&live, id = id](Status st) {
        if (st.ok())
          std::erase_if(live,
                        [&](const auto& e) { return e.second == id; });
      });
    }
    s.engine.run();
  }
  ASSERT_TRUE(live.empty());

  // Groomed OTU carriers that lost their last circuit go back to the pool.
  s.controller->decommission_idle_carriers([](Status) {});
  s.engine.run();

  // --- invariants: nothing leaked anywhere in the plant -----------------
  for (const auto& node : s.model->graph().nodes()) {
    EXPECT_EQ(s.model->roadm_at(node.id).active_uses(), 0u)
        << "ROADM at " << node.name << " still configured";
    EXPECT_EQ(s.model->fxc_at(node.id).active_connections(), 0u)
        << "FXC at " << node.name << " still cross-connected";
  }
  for (const auto& ot : s.model->ots())
    EXPECT_NE(ot->state(), dwdm::Transponder::State::kActive)
        << ot->name() << " still active";
  for (const auto& regen : s.model->regens())
    EXPECT_FALSE(regen->in_use()) << regen->name() << " still engaged";
  const auto slots = s.model->otn().slot_stats();
  EXPECT_EQ(slots.working, 0);
  EXPECT_EQ(slots.shared_reserved, 0);
  EXPECT_EQ(s.model->otn().circuit_count(), 0u);
  for (const auto& site : s.model->customer_sites())
    EXPECT_EQ(s.model->nte(site.nte).ports_in_use(), 0u);
  EXPECT_EQ(s.controller->active_connections(), 0u);
  EXPECT_EQ(s.controller->inventory().reservations(), 0u);
  // Books balance: everything set up was either released or failed.
  const auto& st = s.controller->stats();
  EXPECT_EQ(st.setups_ok, st.releases);
  // The trace ring held its bound for the whole run.
  EXPECT_LE(s.model->trace().records().size(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace griphon::core
