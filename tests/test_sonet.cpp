// Unit tests for the legacy SONET layer: STS sizing, VCAT, ring
// provisioning and sub-second ring protection.
#include <gtest/gtest.h>

#include "sonet/ring.hpp"
#include "sonet/sts.hpp"
#include "sonet/wdcs.hpp"

namespace griphon::sonet {
namespace {

TEST(Sts, VcatSizing) {
  EXPECT_EQ(sts1_count_for(rates::kSts1), 1);
  EXPECT_EQ(sts1_count_for(DataRate::gbps(1)), 20);   // GbE over STS-1-20v
  EXPECT_EQ(sts1_count_for(rates::kOc12), 12);
  EXPECT_EQ(vcat_rate(20).in_gbps(), 20 * rates::kSts1.in_gbps());
}

TEST(Sts, OcCapacity) {
  EXPECT_EQ(oc_capacity(48), 48);
  EXPECT_EQ(oc_capacity(192), 192);
  EXPECT_THROW((void)oc_capacity(0), std::invalid_argument);
}

TEST(Sts, LegacyCeilingIsOc12) {
  EXPECT_EQ(kLegacyBodCeiling, rates::kOc12);
  EXPECT_LT(kLegacyBodCeiling, rates::k1G);  // the gap GRIPhoN fills
}

class RingTest : public ::testing::Test {
 protected:
  RingTest()
      : nodes_{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}},
        ring_(nodes_, /*oc_level=*/48) {}
  std::vector<NodeId> nodes_;
  SonetRing ring_;
};

TEST_F(RingTest, Shape) {
  EXPECT_EQ(ring_.node_count(), 4u);
  EXPECT_EQ(ring_.capacity_sts1(), 48);
  EXPECT_TRUE(ring_.on_ring(NodeId{2}));
  EXPECT_FALSE(ring_.on_ring(NodeId{9}));
}

TEST_F(RingTest, ProvisionTakesShortArc) {
  auto c = ring_.provision(NodeId{0}, NodeId{1}, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ring_.circuit(c.value()).clockwise);
  EXPECT_EQ(ring_.circuit(c.value()).sts1, 3);
}

TEST_F(RingTest, UpsrConsumesBothArcs) {
  // UPSR: 3 STS-1s consume 3 slots on EVERY span (working one way,
  // protection the other).
  ASSERT_TRUE(ring_.provision(NodeId{0}, NodeId{2}, 3).ok());
  EXPECT_EQ(ring_.bottleneck_free(), 45);
}

TEST_F(RingTest, AdmissionAgainstWorstSpan) {
  ASSERT_TRUE(ring_.provision(NodeId{0}, NodeId{2}, 40).ok());
  EXPECT_EQ(ring_.provision(NodeId{1}, NodeId{3}, 10).error().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE(ring_.provision(NodeId{1}, NodeId{3}, 8).ok());
}

TEST_F(RingTest, ValidationErrors) {
  EXPECT_EQ(ring_.provision(NodeId{0}, NodeId{0}, 1).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ring_.provision(NodeId{0}, NodeId{1}, 0).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ring_.provision(NodeId{0}, NodeId{9}, 1).error().code(),
            ErrorCode::kNotFound);
}

TEST_F(RingTest, SpanFailureSwitchesAffectedCircuits) {
  const auto a = ring_.provision(NodeId{0}, NodeId{1}, 2).value();  // span 0
  const auto b = ring_.provision(NodeId{2}, NodeId{3}, 2).value();  // span 2
  const auto switched = ring_.fail_span(0);
  ASSERT_EQ(switched.size(), 1u);
  EXPECT_EQ(switched[0], a);
  EXPECT_TRUE(ring_.circuit(a).on_protection);
  EXPECT_FALSE(ring_.circuit(b).on_protection);
  EXPECT_TRUE(ring_.span_failed(0));
}

TEST_F(RingTest, RepairRevertsCircuits) {
  const auto a = ring_.provision(NodeId{0}, NodeId{1}, 2).value();
  (void)ring_.fail_span(0);
  ring_.repair_span(0);
  EXPECT_FALSE(ring_.circuit(a).on_protection);
  EXPECT_FALSE(ring_.span_failed(0));
}

TEST_F(RingTest, DoubleFailureKeepsProtectionUntilBothRepaired) {
  const auto a = ring_.provision(NodeId{0}, NodeId{2}, 2).value();
  // Working arc 0->1->2 (spans 0 and 1).
  (void)ring_.fail_span(0);
  (void)ring_.fail_span(1);
  ring_.repair_span(0);
  EXPECT_TRUE(ring_.circuit(a).on_protection);  // span 1 still down
  ring_.repair_span(1);
  EXPECT_FALSE(ring_.circuit(a).on_protection);
}

TEST_F(RingTest, ReleaseFreesCapacity) {
  const auto a = ring_.provision(NodeId{0}, NodeId{2}, 40).value();
  ASSERT_TRUE(ring_.release(a).ok());
  EXPECT_EQ(ring_.bottleneck_free(), 48);
  EXPECT_EQ(ring_.release(a).error().code(), ErrorCode::kNotFound);
}

TEST_F(RingTest, ProtectionSwitchIsSubSecond) {
  EXPECT_LT(SonetRing::protection_switch_time(), seconds(1));
}

TEST(Ring, TooSmallThrows) {
  EXPECT_THROW(SonetRing({NodeId{0}, NodeId{1}}, 12), std::invalid_argument);
}

TEST(Wdcs, Ds1Sizing) {
  EXPECT_EQ(ds1_count_for(legacy_rates::kDs1), 1);
  EXPECT_EQ(ds1_count_for(DataRate::mbps(10)), 7);   // 10M / 1.544M
  EXPECT_EQ(ds1_count_for(legacy_rates::kDs3), 29);  // DS3 payload > 28 DS1
}

TEST(Wdcs, ProvisionAndRelease) {
  Wdcs dcs(4);
  EXPECT_EQ(dcs.free_ds1_on(0), kDs1PerDs3);
  auto c = dcs.provision(0, 1, DataRate::mbps(10));  // 7 DS1
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(dcs.free_ds1_on(0), kDs1PerDs3 - 7);
  EXPECT_EQ(dcs.free_ds1_on(1), kDs1PerDs3 - 7);
  EXPECT_EQ(dcs.free_ds1_on(2), kDs1PerDs3);
  ASSERT_TRUE(dcs.release(c.value()).ok());
  EXPECT_EQ(dcs.free_ds1_on(0), kDs1PerDs3);
  EXPECT_EQ(dcs.release(c.value()).error().code(), ErrorCode::kNotFound);
}

TEST(Wdcs, CapacityAndValidation) {
  Wdcs dcs(2);
  // Fill port 0 with 28 DS1s.
  ASSERT_TRUE(dcs.provision(0, 1, DataRate::mbps(43)).ok());  // 28 DS1
  EXPECT_EQ(dcs.provision(0, 1, legacy_rates::kDs1).error().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(dcs.provision(0, 0, legacy_rates::kDs1).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(dcs.provision(0, 9, legacy_rates::kDs1).error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(dcs.provision(0, 1, rates::k1G).error().code(),
            ErrorCode::kInvalidArgument);  // way above DS3: wrong layer
}

TEST(Wdcs, RatesAreThreeOrdersBelowInterDcNeeds) {
  // The reason Fig. 1's top layer is irrelevant to GRIPhoN.
  EXPECT_LT(legacy_rates::kDs3.in_bps() * 20, rates::k1G.in_bps());
}

}  // namespace
}  // namespace griphon::sonet
