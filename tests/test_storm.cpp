// Restoration-storm engine tests: SRLG-correlated failure classification,
// SRLG-diverse replanning (with the explicit non-diverse fallback), the
// capacity-exhausted retry backlog re-armed by teardowns, gold
// preemption of best-effort BoD calendar windows, and a fixed-seed
// failure-storm soak that must drain deterministically with zero leaks.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "bod/admission.hpp"
#include "bod/reservation_calendar.hpp"
#include "bod/transfer_scheduler.hpp"
#include "chaos/fault_injector.hpp"
#include "core/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::core {
namespace {

// Four-node plant: a--b directly (the conduit under test), a-c-b whose
// first hop shares the conduit with a--b, and a-d-b fully independent.
struct ConduitRig {
  sim::Engine engine;
  NodeId a, b, c, d;
  LinkId l_ab, l_ac, l_cb, l_ad, l_db;
  std::unique_ptr<NetworkModel> model;
  std::unique_ptr<GriphonController> controller;
  std::unique_ptr<CustomerPortal> portal;
  MuxponderId site_a, site_b;

  explicit ConduitRig(std::uint64_t seed, bool independent_path = true,
                      GriphonController::Params params = {})
      : engine(seed) {
    topology::Graph g;
    a = g.add_node("a");
    b = g.add_node("b");
    c = g.add_node("c");
    d = g.add_node("d");
    l_ab = g.add_link(a, b, Distance::km(50));
    l_ac = g.add_link(a, c, Distance::km(60));
    l_cb = g.add_link(c, b, Distance::km(60));
    if (independent_path) {
      l_ad = g.add_link(a, d, Distance::km(400));
      l_db = g.add_link(d, b, Distance::km(400));
    }
    g.set_srlg(l_ab, 1);
    g.set_srlg(l_ac, 1);  // a-c rides the same right-of-way as a-b

    NetworkModel::Config cfg;
    cfg.with_otn = false;
    model = std::make_unique<NetworkModel>(&engine, std::move(g), cfg);
    site_a = model->add_customer_site(CustomerId{1}, "A", a).nte;
    site_b = model->add_customer_site(CustomerId{1}, "B", b).nte;
    controller = std::make_unique<GriphonController>(model.get(), params);
    portal = std::make_unique<CustomerPortal>(controller.get(), CustomerId{1},
                                              DataRate::gbps(100));
  }

  ConnectionId connect(ServiceTier tier = ServiceTier::kSilver,
                       ProtectionMode mode = ProtectionMode::kRestorable) {
    std::optional<ConnectionId> id;
    portal->connect(
        site_a, site_b, rates::k10G, mode,
        [&](Result<ConnectionId> r) {
          if (r.ok()) id = r.value();
        },
        tier);
    engine.run();
    EXPECT_TRUE(id.has_value());
    return *id;
  }
};

TEST(StormRestoration, ReplanIsSrlgDiverse) {
  // The failed fiber's conduit-mate (a-c) is up, shorter, and wrong:
  // the same backhoe that cut a-b is parked on top of it. Restoration
  // must take the long conduit-independent a-d-b route.
  ConduitRig rig(200);
  const ConnectionId id = rig.connect();
  EXPECT_TRUE(rig.controller->connection(id).plan.path.uses_link(rig.l_ab));

  rig.model->fail_link(rig.l_ab);
  rig.engine.run();

  const auto& conn = rig.controller->connection(id);
  ASSERT_EQ(conn.state, ConnectionState::kActive);
  EXPECT_FALSE(conn.plan.path.uses_link(rig.l_ac));
  EXPECT_TRUE(conn.plan.path.uses_link(rig.l_ad));
  EXPECT_TRUE(conn.plan.path.uses_link(rig.l_db));
  EXPECT_EQ(rig.controller->stats().restorations_non_diverse, 0u);
}

TEST(StormRestoration, FallsBackToNonDiverseWhenNoDiversePathExists) {
  // Without the a-d-b detour the only surviving route shares the failed
  // conduit. Restoring onto it is a calculated risk the controller takes
  // over leaving the service dark — and it must say so in the stats.
  ConduitRig rig(201, /*independent_path=*/false);
  const ConnectionId id = rig.connect();

  rig.model->fail_link(rig.l_ab);
  rig.engine.run();

  const auto& conn = rig.controller->connection(id);
  ASSERT_EQ(conn.state, ConnectionState::kActive);
  EXPECT_TRUE(conn.plan.path.uses_link(rig.l_ac));
  EXPECT_GE(rig.controller->stats().restorations_non_diverse, 1u);
}

TEST(StormRestoration, ConduitCutCollapsesIntoOneStormEvent) {
  // Both fibers of conduit 1 alarm within the holddown window: one
  // correlated storm event, not two independent failures — and the storm
  // flag clears once the restoration pipeline drains.
  ConduitRig rig(202);
  const ConnectionId id = rig.connect();

  rig.model->fail_link(rig.l_ab);
  rig.model->fail_link(rig.l_ac);
  rig.engine.run();

  EXPECT_EQ(rig.controller->failure_manager().storms_seen(), 1u);
  EXPECT_FALSE(rig.controller->restoration_storm_active());  // drained
  const auto& conn = rig.controller->connection(id);
  ASSERT_EQ(conn.state, ConnectionState::kActive);
  EXPECT_TRUE(conn.plan.path.uses_link(rig.l_ad));
  EXPECT_EQ(rig.controller->restoration_backlog_depth(), 0u);
}

TEST(StormRestoration, CapacityExhaustedThenTeardownRearmsBacklog) {
  // Regression (stranded-on-failed-restoration): X's restoration finds
  // the only surviving route wavelength-exhausted by Y. X must park in
  // the retry backlog — and Y's release must re-arm it immediately, not
  // leave X stranded until an operator notices.
  sim::Engine engine(203);
  topology::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto d = g.add_node("d");
  const auto l_ab = g.add_link(a, b, Distance::km(50));
  const auto l_ad = g.add_link(a, d, Distance::km(60));
  const auto l_db = g.add_link(d, b, Distance::km(60));

  NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.channels = 1;  // one wave per link: the detour fits X or Y, not both
  NetworkModel model(&engine, std::move(g), cfg);
  const auto sa = model.add_customer_site(CustomerId{1}, "A", a).nte;
  const auto sb = model.add_customer_site(CustomerId{1}, "B", b).nte;
  GriphonController controller(&model, GriphonController::Params{});
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(100));

  const auto connect = [&](ProtectionMode mode) {
    std::optional<ConnectionId> id;
    portal.connect(sa, sb, rates::k10G, mode, [&](Result<ConnectionId> r) {
      if (r.ok()) id = r.value();
    });
    engine.run();
    EXPECT_TRUE(id.has_value());
    return *id;
  };
  const ConnectionId x = connect(ProtectionMode::kRestorable);  // on a-b
  const ConnectionId y = connect(ProtectionMode::kUnprotected);  // on a-d-b
  EXPECT_TRUE(controller.connection(x).plan.path.uses_link(l_ab));
  EXPECT_TRUE(controller.connection(y).plan.path.uses_link(l_ad));

  model.fail_link(l_ab);
  engine.run_until(engine.now() + seconds(45));
  EXPECT_EQ(controller.connection(x).state, ConnectionState::kFailed);
  EXPECT_EQ(controller.restoration_backlog_depth(), 1u);

  bool released = false;
  portal.disconnect(y, [&](Status s) { released = s.ok(); });
  engine.run();
  EXPECT_TRUE(released);

  const auto& conn = controller.connection(x);
  ASSERT_EQ(conn.state, ConnectionState::kActive);
  EXPECT_TRUE(conn.plan.path.uses_link(l_ad));
  EXPECT_TRUE(conn.plan.path.uses_link(l_db));
  EXPECT_GE(controller.stats().restorations_retried, 1u);
  EXPECT_EQ(controller.restoration_backlog_depth(), 0u);
  EXPECT_EQ(controller.inventory().reservations(), 0u);
}

TEST(StormRestoration, GoldRestorationPreemptsBestEffortWindow) {
  // A best-effort bulk transfer owns the only wavelength a failed gold
  // connection could restore onto. The gold restoration must reclaim it:
  // the transfer's window is torn down and the gold service comes back.
  NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.channels = 1;
  TestbedScenario s(204, cfg);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  bod::ReservationCalendar::Params cal_params;
  cal_params.slot = minutes(1);
  cal_params.default_link_capacity = rates::k10G;
  bod::ReservationCalendar cal(cal_params);
  bod::AdmissionController adm(&s.engine);
  bod::AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = DataRate::gbps(100);
  policy.requests_per_second = 1000;
  policy.burst = 1000;
  adm.set_policy(s.csp, policy);
  bod::TransferScheduler::Params sp;
  sp.rate_ladder = {rates::k10G};
  sp.setup_pad = minutes(2);
  bod::TransferScheduler sched(s.controller.get(), &cal, &adm, sp);
  sched.register_portal(s.portal.get());

  // Strip the II detour so the plant is down to the direct I-IV fiber
  // plus I-III-IV; later, cutting I-III leaves exactly one route.
  s.model->fail_link(s.topo.ii_iii);
  s.engine.run();

  bod::TransferScheduler::TransferRequest req;
  req.customer = s.csp;
  req.src_site = s.site_i;
  req.dst_site = s.site_iv;
  req.bytes = 2'500'000'000'000;  // ~2000 s at 10G: still mid-window later
  req.deadline = hours(4);
  const auto tid = sched.submit(req);
  ASSERT_TRUE(tid.ok()) << tid.error();
  s.engine.run_until(s.engine.now() + minutes(15));  // window opens, lights
  {
    const auto st = sched.inspect(s.csp, tid.value());
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(st.value().state,
              bod::TransferScheduler::TransferState::kActive);
  }

  // The gold connection finds the direct fiber wavelength-occupied by the
  // transfer and comes up on I-III-IV. Bounded horizons throughout: a
  // full drain would let the transfer finish and hand its wave back.
  std::optional<ConnectionId> gold;
  s.portal->connect(
      s.site_i, s.site_iv, rates::k10G, ProtectionMode::kRestorable,
      [&](Result<ConnectionId> r) {
        if (r.ok()) gold = r.value();
      },
      ServiceTier::kGold);
  s.engine.run_until(s.engine.now() + minutes(4));
  ASSERT_TRUE(gold.has_value());
  EXPECT_TRUE(s.controller->connection(*gold).plan.path.uses_link(
      s.topo.i_iii));

  s.model->fail_link(s.topo.i_iii);
  s.engine.run_until(s.engine.now() + minutes(8));

  const auto& conn = s.controller->connection(*gold);
  ASSERT_EQ(conn.state, ConnectionState::kActive);
  EXPECT_TRUE(conn.plan.path.uses_link(s.topo.i_iv));
  EXPECT_GE(s.controller->stats().preemptions_requested, 1u);
  EXPECT_GE(s.controller->stats().bod_windows_preempted, 1u);
  EXPECT_GE(sched.stats().preempted, 1u);
  // The preempted transfer was re-planned or failed loudly — never left
  // silently holding spectrum it no longer has.
  s.engine.run();
  const auto st = sched.inspect(s.csp, tid.value());
  ASSERT_TRUE(st.ok());
  EXPECT_NE(st.value().state, bod::TransferScheduler::TransferState::kActive);
  EXPECT_EQ(s.controller->restoration_backlog_depth(), 0u);
}

// --- fixed-seed storm soak --------------------------------------------------

std::string run_storm_soak(std::uint64_t seed) {
  sim::Engine engine(seed);
  topology::Graph g;
  std::vector<NodeId> n;
  for (int i = 0; i < 6; ++i)
    n.push_back(g.add_node("n" + std::to_string(i)));
  std::vector<LinkId> ring;
  for (int i = 0; i < 6; ++i)
    ring.push_back(
        g.add_link(n[static_cast<std::size_t>(i)],
                   n[static_cast<std::size_t>((i + 1) % 6)],
                   Distance::km(80)));
  const auto c03 = g.add_link(n[0], n[3], Distance::km(150));
  const auto c14 = g.add_link(n[1], n[4], Distance::km(150));
  // Two conduits: the n0-n1 span shares a right-of-way with the n0-n3
  // chord, and n3-n4 with the n1-n4 chord.
  g.set_srlg(ring[0], 1);
  g.set_srlg(c03, 1);
  g.set_srlg(ring[3], 2);
  g.set_srlg(c14, 2);

  NetworkModel::Config cfg;
  cfg.with_otn = false;
  NetworkModel model(&engine, std::move(g), cfg);
  const auto s0 = model.add_customer_site(CustomerId{1}, "S0", n[0]).nte;
  const auto s2 = model.add_customer_site(CustomerId{1}, "S2", n[2]).nte;
  const auto s4 = model.add_customer_site(CustomerId{1}, "S4", n[4]).nte;
  GriphonController::Params params;
  params.restoration.max_concurrent = 4;
  GriphonController controller(&model, params);
  CustomerPortal portal(&controller, CustomerId{1}, DataRate::gbps(200));

  std::vector<ConnectionId> conns;
  const auto connect = [&](MuxponderId from, MuxponderId to,
                           ServiceTier tier) {
    std::optional<ConnectionId> id;
    portal.connect(
        from, to, rates::k10G, ProtectionMode::kRestorable,
        [&](Result<ConnectionId> r) {
          if (r.ok()) id = r.value();
        },
        tier);
    engine.run();
    ASSERT_TRUE(id.has_value());
    conns.push_back(*id);
  };
  connect(s0, s2, ServiceTier::kGold);
  connect(s0, s4, ServiceTier::kSilver);
  connect(s2, s4, ServiceTier::kBronze);

  chaos::FaultInjector injector(&model, chaos::FaultPlan::failure_storm(),
                                /*seed=*/seed + 17);
  injector.arm();
  engine.run_until(engine.now() + hours(2));
  injector.disarm();
  injector.heal_all();
  engine.run();

  // Zero-leak, fully drained: with the plant healed, every connection is
  // terminal (active) and nothing holds a reservation or a retry timer.
  EXPECT_GT(injector.stats().fiber_cuts, 0u);
  EXPECT_EQ(controller.inventory().reservations(), 0u);
  EXPECT_EQ(controller.restoration_backlog_depth(), 0u);
  EXPECT_FALSE(controller.restoration_storm_active());
  for (const ConnectionId id : conns)
    EXPECT_EQ(controller.connection(id).state, ConnectionState::kActive)
        << "connection " << id.value();

  const auto& st = controller.stats();
  std::ostringstream digest;
  digest << "cuts=" << injector.stats().fiber_cuts << "/"
         << injector.stats().conduit_cuts << "/"
         << injector.stats().links_cut
         << " storms=" << controller.failure_manager().storms_seen()
         << " restored=" << st.restorations_ok << " failed="
         << st.restorations_failed << " retried=" << st.restorations_retried
         << " nondiverse=" << st.restorations_non_diverse;
  for (const ConnectionId id : conns)
    digest << " r" << id.value() << "="
           << controller.connection(id).restorations;
  return digest.str();
}

TEST(StormSoak, FixedSeedStormIsDeterministicAndLeakFree) {
  const std::string first = run_storm_soak(777);
  const std::string second = run_storm_soak(777);
  EXPECT_EQ(first, second) << "storm soak digest diverged across replays";
  SUCCEED() << first;
}

}  // namespace
}  // namespace griphon::core
