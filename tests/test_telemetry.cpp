// Telemetry subsystem tests.
//
// Unit level: histogram bucket/quantile math, registry idempotency and the
// Prometheus / JSON-row expositions, the griphon_<layer>_<name> metric
// naming scheme, span nesting / tag inheritance / retroactive recording,
// and the waterfall renderer. Integration level: a real testbed setup's
// span tree tiles the end-to-end setup duration exactly, a fiber cut
// decomposes into detect → localize → replan → reprovision, and every
// metric the instrumented layers register conforms to the naming scheme
// (this doubles as the CI name-scheme check).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "core/scenario.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"

namespace griphon::telemetry {
namespace {

constexpr auto npos = std::string::npos;

// --- Histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundsAreUpperInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // exactly at a bound lands in that bound's bucket (le)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);  // overflow bucket
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);  // all rank mass in bucket 0
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  // Mass split over two buckets: the median falls on the first bound.
  Histogram h2({1.0, 2.0});
  h2.observe(0.5);
  h2.observe(1.5);
  EXPECT_DOUBLE_EQ(h2.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h2.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileEmptyAndOverflowClamp) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(100.0);                        // overflow only
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);  // clamped to last finite bound
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram(std::vector<double>{}), std::logic_error);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.counter("griphon_test_hits_total", "hits");
  a->inc();
  Counter* b = reg.counter("griphon_test_hits_total", "help ignored");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("griphon_test_thing_total", "h");
  EXPECT_THROW(reg.gauge("griphon_test_thing_total", "h"), std::logic_error);
  EXPECT_THROW(reg.histogram("griphon_test_thing_total", "h"),
               std::logic_error);
}

TEST(MetricsRegistry, NameScheme) {
  EXPECT_TRUE(MetricsRegistry::name_ok("griphon_rwa_plans_total"));
  EXPECT_TRUE(MetricsRegistry::name_ok("griphon_ems_roadm_task_seconds"));
  EXPECT_FALSE(MetricsRegistry::name_ok("rwa_plans_total"));  // no prefix
  EXPECT_FALSE(MetricsRegistry::name_ok("griphon_plans"));    // two tokens
  EXPECT_FALSE(MetricsRegistry::name_ok("griphon__plans_total"));  // empty
  EXPECT_FALSE(MetricsRegistry::name_ok("griphon_RWA_plans_total"));
  EXPECT_FALSE(MetricsRegistry::name_ok("griphon_rwa_plans_"));

  MetricsRegistry reg;
  reg.counter("griphon_rwa_plans_total", "conforms");
  reg.counter("bad_name", "violates the scheme");
  const auto bad = reg.invalid_names();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "bad_name");
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("griphon_test_hits_total", "hits")->inc(3);
  reg.gauge("griphon_test_level_value", "level")->set(2.5);
  Histogram* h =
      reg.histogram("griphon_test_wait_seconds", "wait", {1.0, 2.0});
  h->observe(0.5);
  h->observe(5.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP griphon_test_hits_total hits"), npos);
  EXPECT_NE(text.find("# TYPE griphon_test_hits_total counter"), npos);
  EXPECT_NE(text.find("griphon_test_hits_total 3"), npos);
  EXPECT_NE(text.find("# TYPE griphon_test_level_value gauge"), npos);
  EXPECT_NE(text.find("griphon_test_level_value 2.5"), npos);
  EXPECT_NE(text.find("# TYPE griphon_test_wait_seconds histogram"), npos);
  // Buckets are cumulative, with the +Inf total and _sum/_count samples.
  EXPECT_NE(text.find("griphon_test_wait_seconds_bucket{le=\"1\"} 1"), npos);
  EXPECT_NE(text.find("griphon_test_wait_seconds_bucket{le=\"2\"} 1"), npos);
  EXPECT_NE(text.find("griphon_test_wait_seconds_bucket{le=\"+Inf\"} 2"),
            npos);
  EXPECT_NE(text.find("griphon_test_wait_seconds_sum 5.5"), npos);
  EXPECT_NE(text.find("griphon_test_wait_seconds_count 2"), npos);
}

TEST(MetricsRegistry, JsonRowsExpandHistograms) {
  MetricsRegistry reg;
  reg.counter("griphon_test_hits_total", "hits")->inc(3);
  Histogram* h =
      reg.histogram("griphon_test_wait_seconds", "wait", {1.0, 2.0});
  h->observe(0.5);
  const std::string rows = reg.to_json_rows("smoke");
  EXPECT_NE(rows.find("\"bench\": \"smoke\""), npos);
  EXPECT_NE(rows.find("\"metric\": \"griphon_test_hits_total\""), npos);
  EXPECT_NE(rows.find("griphon_test_wait_seconds_p95"), npos);
  EXPECT_NE(rows.find("\"unit\": \"s\""), npos);  // *_seconds histograms
}

TEST(MetricsRegistry, LabeledSeriesAreIndependent) {
  MetricsRegistry reg;
  Counter* a = reg.counter("griphon_test_hits_total", "hits",
                           {{"customer", "1"}});
  Counter* b = reg.counter("griphon_test_hits_total", "hits",
                           {{"customer", "2"}});
  Counter* bare = reg.counter("griphon_test_hits_total", "hits");
  EXPECT_NE(a, b);
  EXPECT_NE(a, bare);
  a->inc(3);
  b->inc(5);
  EXPECT_EQ(reg.find_counter("griphon_test_hits_total",
                             {{"customer", "1"}})->value(), 3u);
  EXPECT_EQ(reg.find_counter("griphon_test_hits_total",
                             {{"customer", "2"}})->value(), 5u);
  EXPECT_EQ(reg.find_counter("griphon_test_hits_total")->value(), 0u);
  // Label order never splits a series; same set = same handle.
  EXPECT_EQ(reg.counter("griphon_test_multi_total", "m",
                        {{"a", "1"}, {"b", "2"}}),
            reg.counter("griphon_test_multi_total", "m",
                        {{"b", "2"}, {"a", "1"}}));
  // Each label set is one series; three registered under hits_total.
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricsRegistry, LabeledExpositionGroupsFamilies) {
  MetricsRegistry reg;
  reg.counter("griphon_test_hits_total", "hits", {{"customer", "2"}})->inc(7);
  reg.counter("griphon_test_hits_total", "hits", {{"customer", "1"}})->inc(3);
  const std::string text = reg.to_prometheus();
  // One HELP/TYPE header for the family, then every labeled sample.
  EXPECT_EQ(text.find("# HELP griphon_test_hits_total hits"),
            text.rfind("# HELP griphon_test_hits_total hits"));
  EXPECT_NE(text.find("griphon_test_hits_total{customer=\"1\"} 3"), npos);
  EXPECT_NE(text.find("griphon_test_hits_total{customer=\"2\"} 7"), npos);
  // JSON rows carry the label block in the metric name, escaped.
  const std::string rows = reg.to_json_rows("smoke");
  EXPECT_NE(rows.find("griphon_test_hits_total{customer=\\\"1\\\"}"), npos);
  // Family names are validated; the label block is not part of the name.
  EXPECT_TRUE(reg.invalid_names().empty());
}

TEST(MetricsRegistry, LabelValuesEscapeNewlines) {
  MetricsRegistry reg;
  reg.counter("griphon_test_hits_total", "hits",
              {{"reason", "line1\nline2"}})
      ->inc(2);
  // A literal newline in a label value would split the sample line and
  // corrupt the exposition; it must come out as the two-character '\n'.
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("reason=\"line1\\nline2\""), npos);
  EXPECT_EQ(text.find("line1\nline2"), npos);
  // The escaped key still resolves to the same series on lookup.
  const auto* c =
      reg.find_counter("griphon_test_hits_total", {{"reason", "line1\nline2"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2u);
}

// --- SpanTracer ------------------------------------------------------------

TEST(SpanTracer, NestingAndTagInheritance) {
  SpanTracer t;
  const SpanId root = t.start("setup", "controller", 77, 0, seconds(1));
  const SpanId child = t.start("ot.tune", "controller", 0, root, seconds(2));
  EXPECT_EQ(t.find(child)->tag, 77u);  // inherited from the parent
  EXPECT_EQ(t.open_count(), 2u);
  t.end(child, seconds(5));
  t.end(root, seconds(6), false, "boom");
  EXPECT_EQ(t.open_count(), 0u);
  EXPECT_EQ(t.find(child)->duration(), seconds(3));
  EXPECT_FALSE(t.find(root)->ok);
  EXPECT_EQ(t.find(root)->detail, "boom");
  EXPECT_EQ(t.for_tag(77).size(), 2u);
  ASSERT_EQ(t.children_of(root).size(), 1u);
  EXPECT_EQ(t.children_of(root)[0]->name, "ot.tune");
}

TEST(SpanTracer, NullUnknownAndDoubleEndAreNoOps) {
  SpanTracer t;
  t.end(0, seconds(1));   // null handle
  t.end(42, seconds(1));  // unknown id
  const SpanId s = t.start("x", "a", 1, 0, seconds(0));
  t.end(s, seconds(2));
  t.end(s, seconds(9), false);  // second close is ignored
  EXPECT_EQ(t.find(s)->end, seconds(2));
  EXPECT_TRUE(t.find(s)->ok);
  EXPECT_EQ(t.open_count(), 0u);
}

TEST(SpanTracer, RetroactiveRecordInheritsTagAndIsClosed) {
  SpanTracer t;
  const SpanId root =
      t.start("restoration", "controller", 9, 0, seconds(10));
  const SpanId d = t.record("detect", "failure-manager", 0, root, seconds(4),
                            seconds(6), true, "link 3");
  const Span* sp = t.find(d);
  ASSERT_NE(sp, nullptr);
  EXPECT_TRUE(sp->done);
  EXPECT_EQ(sp->tag, 9u);
  EXPECT_EQ(sp->duration(), seconds(2));
  EXPECT_EQ(sp->detail, "link 3");
  EXPECT_EQ(t.open_count(), 1u);  // only the root is still open
}

TEST(SpanTracer, JsonFiltersByTag) {
  SpanTracer t;
  t.record("a", "x", 1, 0, seconds(0), seconds(1));
  t.record("b", "x", 2, 0, seconds(0), seconds(1));
  const std::string tag1 = t.to_json(1);
  EXPECT_NE(tag1.find("\"name\":\"a\""), npos);
  EXPECT_EQ(tag1.find("\"name\":\"b\""), npos);
  const std::string all = t.to_json();
  EXPECT_NE(all.find("\"name\":\"a\""), npos);
  EXPECT_NE(all.find("\"name\":\"b\""), npos);
}

// --- TimelineReport --------------------------------------------------------

TEST(TimelineReport, RendersIndentedWaterfall) {
  SpanTracer t;
  const SpanId root =
      t.start("connection_setup", "controller", 5, 0, seconds(0));
  const SpanId child =
      t.start("path_computation", "controller", 0, root, seconds(0));
  t.end(child, seconds(1));
  t.end(root, seconds(4));
  TimelineReport report(&t);
  const std::string text = report.render(5);
  EXPECT_NE(text.find("timeline tag=5"), npos);
  EXPECT_NE(text.find("total=4.000s"), npos);
  EXPECT_NE(text.find("connection_setup"), npos);
  EXPECT_NE(text.find("  path_computation"), npos);  // indented child
  EXPECT_NE(text.find('#'), npos);                   // bars drawn
  EXPECT_TRUE(report.render(999).empty());           // unknown tag
}

// --- Telemetry facade ------------------------------------------------------

TEST(Telemetry, DetectNoteIsConsumedOnce) {
  sim::Engine e(1);
  Telemetry tel(&e);
  EXPECT_EQ(tel.close_detect(5), 0u);  // nothing noted
  tel.note_link_failed(5);
  const SpanId d = tel.close_detect(5);
  EXPECT_NE(d, 0u);
  EXPECT_EQ(tel.spans().find(d)->name, "detect");
  EXPECT_EQ(tel.close_detect(5), 0u);  // note consumed
}

// --- Full-stack integration ------------------------------------------------

TEST(TelemetryIntegration, SetupSpanTreeTilesSetupDuration) {
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;
  // Exact sum-tiling only holds for the sequential (2011 testbed) executor;
  // the DAG executor overlaps dialogues, so its root span is tiled by the
  // critical path instead (checked in bench_table2_setup_time).
  core::GriphonController::Params params;
  params.exec_mode = core::ExecMode::kSequential;
  core::TestbedScenario s(7, cfg, params);
  Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());

  const Span* root = nullptr;
  for (const Span* sp : tel.spans().for_tag(core::telemetry_tag(*id)))
    if (sp->name == "connection_setup") root = sp;
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->done);
  EXPECT_TRUE(root->ok);

  // Sequential orchestration: path computation plus the EMS command train
  // tile the root span — no idle gaps, no uninstrumented phase.
  SimTime phase_sum{};
  bool saw_path_computation = false;
  bool saw_ems_command = false;
  for (const Span* child : tel.spans().children_of(root->id)) {
    phase_sum += child->duration();
    if (child->name == "path_computation") saw_path_computation = true;
    if (child->name.find('.') != npos) saw_ems_command = true;
  }
  EXPECT_TRUE(saw_path_computation);
  EXPECT_TRUE(saw_ems_command);
  EXPECT_EQ(phase_sum, root->duration());
  EXPECT_EQ(root->duration(), s.controller->connection(*id).setup_duration);
  EXPECT_EQ(tel.spans().open_count(), 0u);

  // Metrics side: layers registered under the scheme, and counted the work.
  EXPECT_TRUE(tel.metrics().invalid_names().empty())
      << "metric name violates griphon_<layer>_<name>";
  const Counter* ok =
      tel.metrics().find_counter("griphon_controller_setups_ok_total");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value(), 1u);
  const Histogram* setup_seconds =
      tel.metrics().find_histogram("griphon_controller_setup_seconds");
  ASSERT_NE(setup_seconds, nullptr);
  EXPECT_EQ(setup_seconds->count(), 1u);
}

TEST(TelemetryIntegration, RestorationDecomposesIntoPhases) {
  core::TestbedScenario s(11);
  Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());

  const LinkId link =
      s.controller->connection(*id).plan.path.links.front();
  s.model->fail_link(link);
  s.engine.run();
  ASSERT_GE(s.controller->stats().restorations_ok, 1u);

  std::set<std::string> names;
  for (const Span* sp : tel.spans().for_tag(core::telemetry_tag(*id)))
    names.insert(sp->name);
  for (const char* phase :
       {"restoration", "release_old_path", "replan", "reprovision"})
    EXPECT_TRUE(names.count(phase)) << "missing span: " << phase;

  // detect and localize are plant-level retroactive spans (tag 0).
  bool detect = false;
  bool localize = false;
  for (const Span& sp : tel.spans().spans()) {
    if (sp.name == "detect") detect = true;
    if (sp.name == "localize") localize = true;
  }
  EXPECT_TRUE(detect);
  EXPECT_TRUE(localize);
  EXPECT_EQ(tel.spans().open_count(), 0u);

  const Counter* restored =
      tel.metrics().find_counter("griphon_controller_restorations_ok_total");
  ASSERT_NE(restored, nullptr);
  EXPECT_GE(restored->value(), 1u);
  EXPECT_TRUE(tel.metrics().invalid_names().empty());
}

}  // namespace
}  // namespace griphon::telemetry
