// Tests for tiered (gold/silver/bronze) restoration ordering: when one
// fiber cut fails many restorable connections, the shared restoration
// machinery serves gold first.
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace griphon::core {
namespace {

struct TierFixture {
  TestbedScenario s{120};
  ConnectionId bronze, gold, silver;

  TierFixture() {
    auto connect = [&](ServiceTier tier) {
      std::optional<ConnectionId> id;
      s.portal->connect(
          s.site_i, s.site_iv, rates::k10G, ProtectionMode::kRestorable,
          [&](Result<ConnectionId> r) {
            if (r.ok()) id = r.value();
          },
          tier);
      s.engine.run();
      EXPECT_TRUE(id.has_value());
      return *id;
    };
    // Deliberately set up in worst-first order so FIFO would be wrong.
    bronze = connect(ServiceTier::kBronze);
    gold = connect(ServiceTier::kGold);
    silver = connect(ServiceTier::kSilver);
  }
};

TEST(Tiers, GoldRestoresFirstAfterSharedCut) {
  TierFixture f;
  auto& s = f.s;
  s.model->fail_link(s.topo.i_iv);  // all three ride the direct span
  s.engine.run();

  const auto& g = s.controller->connection(f.gold);
  const auto& sv = s.controller->connection(f.silver);
  const auto& b = s.controller->connection(f.bronze);
  ASSERT_EQ(g.state, ConnectionState::kActive);
  ASSERT_EQ(sv.state, ConnectionState::kActive);
  ASSERT_EQ(b.state, ConnectionState::kActive);
  EXPECT_EQ(g.restorations, 1);
  // Strict tier ordering of outages: gold < silver < bronze.
  EXPECT_LT(to_seconds(g.total_outage), to_seconds(sv.total_outage));
  EXPECT_LT(to_seconds(sv.total_outage), to_seconds(b.total_outage));
  // Gold restored in one restoration cycle (~1-2 min); bronze waited for
  // the two ahead of it.
  EXPECT_LT(to_seconds(g.total_outage), 150.0);
  EXPECT_GT(to_seconds(b.total_outage), to_seconds(g.total_outage) * 2);
}

TEST(Tiers, DefaultTierIsSilver) {
  TestbedScenario s(121);
  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(s.controller->connection(*id).tier, ServiceTier::kSilver);
}

TEST(Tiers, QueueSkipsConnectionsThatRecoveredMeanwhile) {
  // Gold + bronze fail; the fiber is repaired while gold is still mid-
  // restoration. Bronze must recover via the repair (its devices were
  // never touched) and its queued restoration must become a no-op rather
  // than double-provision.
  TierFixture f;
  auto& s = f.s;
  s.model->fail_link(s.topo.i_iv);
  // Let localization + the first (gold) restoration begin, then repair.
  s.engine.run_until(s.engine.now() + seconds(30));
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  for (const ConnectionId id : {f.gold, f.silver, f.bronze}) {
    const auto& c = s.controller->connection(id);
    EXPECT_EQ(c.state, ConnectionState::kActive)
        << "connection " << id.value();
  }
  // No leaked reservations from abandoned queue entries.
  EXPECT_EQ(s.controller->inventory().reservations(), 0u);
}

}  // namespace
}  // namespace griphon::core
