// Unit + property tests for the topology substrate: graph model, Dijkstra,
// Yen k-shortest paths, Bhandari disjoint pairs, topology builders.
#include <gtest/gtest.h>

#include <set>

#include "topology/builders.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"

namespace griphon::topology {
namespace {

Graph diamond() {
  // a - b - d and a - c - d, plus direct a - d.
  Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  const auto d = g.add_node("d");
  g.add_link(a, b, Distance::km(10));
  g.add_link(b, d, Distance::km(10));
  g.add_link(a, c, Distance::km(15));
  g.add_link(c, d, Distance::km(15));
  g.add_link(a, d, Distance::km(25));
  return g;
}

TEST(Graph, NodesAndLinks) {
  Graph g = diamond();
  EXPECT_EQ(g.nodes().size(), 4u);
  EXPECT_EQ(g.links().size(), 5u);
  EXPECT_EQ(g.degree(NodeId{0}), 3u);  // a: b, c, d
  EXPECT_EQ(g.degree(NodeId{1}), 2u);  // b: a, d
}

TEST(Graph, FindByName) {
  Graph g = diamond();
  ASSERT_TRUE(g.find_node("c").has_value());
  EXPECT_EQ(*g.find_node("c"), NodeId{2});
  EXPECT_FALSE(g.find_node("zz").has_value());
}

TEST(Graph, FindLink) {
  Graph g = diamond();
  EXPECT_TRUE(g.find_link(NodeId{0}, NodeId{3}).has_value());
  EXPECT_FALSE(g.find_link(NodeId{1}, NodeId{2}).has_value());
}

TEST(Graph, LinkPeerAndTouches) {
  Graph g = diamond();
  const Link& l = g.link(LinkId{0});  // a-b
  EXPECT_EQ(l.peer(NodeId{0}), NodeId{1});
  EXPECT_EQ(l.peer(NodeId{1}), NodeId{0});
  EXPECT_TRUE(l.touches(NodeId{0}));
  EXPECT_FALSE(l.touches(NodeId{3}));
}

TEST(Graph, MultiSpanLink) {
  Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto id = g.add_link(
      a, b, std::vector<Distance>{Distance::km(100), Distance::km(80)});
  EXPECT_EQ(g.link(id).spans.size(), 2u);
  EXPECT_EQ(g.link(id).length().in_km(), 180.0);
}

TEST(Graph, SpanLookup) {
  Graph g = diamond();
  const SpanId span = g.link(LinkId{2}).spans.front().id;
  ASSERT_TRUE(g.link_of_span(span).has_value());
  EXPECT_EQ(*g.link_of_span(span), LinkId{2});
}

TEST(Graph, RejectsInvalidConstruction) {
  Graph g;
  const auto a = g.add_node("a");
  EXPECT_THROW(g.add_link(a, a, Distance::km(1)), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, NodeId{5}, Distance::km(1)), std::out_of_range);
  EXPECT_THROW((void)g.node(NodeId{9}), std::out_of_range);
}

TEST(ShortestPath, PicksMinimumDistance) {
  Graph g = diamond();
  const auto p =
      shortest_path(g, NodeId{0}, NodeId{3}, distance_weight());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);  // a-b-d (20 km) beats a-d (25 km)
  EXPECT_EQ(p->length(g).in_km(), 20.0);
  EXPECT_EQ(p->nodes.front(), NodeId{0});
  EXPECT_EQ(p->nodes.back(), NodeId{3});
}

TEST(ShortestPath, HopWeightPrefersDirect) {
  Graph g = diamond();
  const auto p = shortest_path(g, NodeId{0}, NodeId{3}, hop_weight());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 1u);
}

TEST(ShortestPath, FilterExcludesLinks) {
  Graph g = diamond();
  const auto direct = g.find_link(NodeId{0}, NodeId{3});
  const auto p = shortest_path(
      g, NodeId{0}, NodeId{3}, hop_weight(),
      [&](const Link& l) { return l.id != *direct; });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
}

TEST(ShortestPath, UnreachableReturnsEmpty) {
  Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_node("island");
  g.add_link(a, b, Distance::km(1));
  EXPECT_FALSE(
      shortest_path(g, a, NodeId{2}, distance_weight()).has_value());
}

TEST(ShortestPath, SrcEqualsDstThrows) {
  Graph g = diamond();
  EXPECT_THROW(
      (void)shortest_path(g, NodeId{0}, NodeId{0}, hop_weight()),
      std::invalid_argument);
}

TEST(KShortest, ReturnsOrderedDistinctPaths) {
  Graph g = diamond();
  const auto paths =
      k_shortest_paths(g, NodeId{0}, NodeId{3}, 3, distance_weight());
  ASSERT_EQ(paths.size(), 3u);
  double prev = 0;
  std::set<std::vector<LinkId>> seen;
  for (const auto& p : paths) {
    const double w = p.length(g).in_km();
    EXPECT_GE(w, prev);
    prev = w;
    EXPECT_TRUE(seen.insert(p.links).second) << "duplicate path";
  }
  EXPECT_EQ(paths[0].length(g).in_km(), 20.0);
  EXPECT_EQ(paths[1].length(g).in_km(), 25.0);
  EXPECT_EQ(paths[2].length(g).in_km(), 30.0);
}

TEST(KShortest, StopsWhenExhausted) {
  Graph g = diamond();
  const auto paths =
      k_shortest_paths(g, NodeId{0}, NodeId{3}, 50, distance_weight());
  EXPECT_EQ(paths.size(), 3u);  // only three loopless routes exist
}

TEST(KShortest, KZeroIsEmpty) {
  Graph g = diamond();
  EXPECT_TRUE(
      k_shortest_paths(g, NodeId{0}, NodeId{3}, 0, hop_weight()).empty());
}

TEST(DisjointPair, FindsLinkDisjointPaths) {
  Graph g = diamond();
  const auto pair = disjoint_pair(g, NodeId{0}, NodeId{3}, distance_weight());
  ASSERT_TRUE(pair.has_value());
  std::set<LinkId> first(pair->primary.links.begin(),
                         pair->primary.links.end());
  for (const LinkId l : pair->secondary.links)
    EXPECT_FALSE(first.contains(l)) << "paths share a link";
}

TEST(DisjointPair, NoneWhenBridgeExists) {
  // a - b - c: the b link is a bridge; no disjoint pair can exist.
  Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  g.add_link(a, b, Distance::km(1));
  g.add_link(b, c, Distance::km(1));
  EXPECT_FALSE(disjoint_pair(g, a, c, distance_weight()).has_value());
}

TEST(DisjointPair, OptimalOnTrapGraph) {
  // Classic trap: greedy two-step (shortest, then disjoint) fails or is
  // suboptimal; Bhandari finds the jointly optimal pair.
  Graph g;
  const auto s = g.add_node("s");
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto t = g.add_node("t");
  g.add_link(s, a, Distance::km(1));
  g.add_link(a, b, Distance::km(1));
  g.add_link(b, t, Distance::km(1));
  g.add_link(s, b, Distance::km(4));
  g.add_link(a, t, Distance::km(4));
  // Shortest path s-a-b-t (3 km) uses both middle links; the only disjoint
  // pair is s-a-t (5) + s-b-t (5).
  const auto pair = disjoint_pair(g, s, t, distance_weight());
  ASSERT_TRUE(pair.has_value());
  const double total = pair->primary.length(g).in_km() +
                       pair->secondary.length(g).in_km();
  EXPECT_EQ(total, 10.0);
}

TEST(PathHelpers, UsesLinkAndNode) {
  Graph g = diamond();
  const auto p = shortest_path(g, NodeId{0}, NodeId{3}, distance_weight());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->uses_node(NodeId{1}));
  EXPECT_FALSE(p->uses_node(NodeId{2}));
  EXPECT_TRUE(p->uses_link(p->links.front()));
}

TEST(Builders, PaperTestbedShape) {
  const Testbed t = paper_testbed();
  EXPECT_EQ(t.graph.nodes().size(), 4u);
  EXPECT_EQ(t.graph.links().size(), 5u);
  // Two 3-degree and two 2-degree ROADM sites, as in Fig. 4.
  EXPECT_EQ(t.graph.degree(t.i), 3u);
  EXPECT_EQ(t.graph.degree(t.iii), 3u);
  EXPECT_EQ(t.graph.degree(t.ii), 2u);
  EXPECT_EQ(t.graph.degree(t.iv), 2u);
}

TEST(Builders, PaperTestbedHasTheThreeMeasuredPaths) {
  const Testbed t = paper_testbed();
  // 1 hop: I-IV direct.
  const auto p1 = shortest_path(t.graph, t.i, t.iv, hop_weight());
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->hops(), 1u);
  // 2 hops: I-III-IV once the direct link is excluded.
  const auto p2 = shortest_path(
      t.graph, t.i, t.iv, hop_weight(),
      [&](const Link& l) { return l.id != t.i_iv; });
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->hops(), 2u);
  EXPECT_TRUE(p2->uses_node(t.iii));
  // 3 hops: I-II-III-IV when I-IV and I-III are excluded.
  const auto p3 = shortest_path(
      t.graph, t.i, t.iv, hop_weight(),
      [&](const Link& l) { return l.id != t.i_iv && l.id != t.i_iii; });
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->hops(), 3u);
  EXPECT_TRUE(p3->uses_node(t.ii));
  EXPECT_TRUE(p3->uses_node(t.iii));
}

TEST(Builders, UsBackboneIsConnectedAndSpanned) {
  const Graph g = us_backbone();
  EXPECT_EQ(g.nodes().size(), 14u);
  EXPECT_GE(g.links().size(), 20u);
  for (const auto& to : g.nodes()) {
    if (to.id == NodeId{0}) continue;
    EXPECT_TRUE(
        shortest_path(g, NodeId{0}, to.id, distance_weight()).has_value())
        << "unreachable: " << to.name;
  }
  // Long links are split into ~100 km amplified spans.
  for (const auto& l : g.links())
    for (const auto& s : l.spans) EXPECT_LE(s.length.in_km(), 121.0);
}

TEST(Builders, RingShape) {
  const Graph g = ring(6, Distance::km(600));
  EXPECT_EQ(g.nodes().size(), 6u);
  EXPECT_EQ(g.links().size(), 6u);
  for (const auto& n : g.nodes()) EXPECT_EQ(g.degree(n.id), 2u);
}

TEST(Builders, RingTooSmallThrows) {
  EXPECT_THROW((void)ring(2, Distance::km(100)), std::invalid_argument);
}

// Property tests over random meshes.
class RandomMeshProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMeshProperty, MeshIsConnected) {
  Rng rng(GetParam());
  const Graph g = random_mesh(20, 3.0, rng);
  for (const auto& n : g.nodes()) {
    if (n.id == NodeId{0}) continue;
    EXPECT_TRUE(
        shortest_path(g, NodeId{0}, n.id, distance_weight()).has_value());
  }
}

TEST_P(RandomMeshProperty, YenPathsAreLooplessAndSorted) {
  Rng rng(GetParam());
  const Graph g = random_mesh(15, 3.2, rng);
  const auto paths =
      k_shortest_paths(g, NodeId{0}, NodeId{14}, 6, distance_weight());
  ASSERT_FALSE(paths.empty());
  double prev = 0;
  for (const auto& p : paths) {
    // Loopless: no node repeats.
    std::set<NodeId> nodes(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(nodes.size(), p.nodes.size());
    // Consecutive links actually connect.
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const Link& l = g.link(p.links[i]);
      EXPECT_TRUE(l.touches(p.nodes[i]));
      EXPECT_TRUE(l.touches(p.nodes[i + 1]));
    }
    EXPECT_GE(p.length(g).in_km(), prev);
    prev = p.length(g).in_km();
  }
}

TEST_P(RandomMeshProperty, BhandariPairIsDisjointAndNoLongerThanGreedy) {
  Rng rng(GetParam());
  const Graph g = random_mesh(15, 3.5, rng);
  const auto pair = disjoint_pair(g, NodeId{0}, NodeId{14},
                                  distance_weight());
  if (!pair) return;  // graph may genuinely lack a disjoint pair
  std::set<LinkId> first(pair->primary.links.begin(),
                         pair->primary.links.end());
  for (const LinkId l : pair->secondary.links)
    EXPECT_FALSE(first.contains(l));
  // Jointly optimal => total no worse than the greedy two-step approach.
  const auto sp = shortest_path(g, NodeId{0}, NodeId{14}, distance_weight());
  ASSERT_TRUE(sp.has_value());
  std::set<LinkId> sp_links(sp->links.begin(), sp->links.end());
  const auto greedy2 = shortest_path(
      g, NodeId{0}, NodeId{14}, distance_weight(),
      [&](const Link& l) { return !sp_links.contains(l.id); });
  if (greedy2) {
    const double bhandari_total = pair->primary.length(g).in_km() +
                                  pair->secondary.length(g).in_km();
    const double greedy_total =
        sp->length(g).in_km() + greedy2->length(g).in_km();
    EXPECT_LE(bhandari_total, greedy_total + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMeshProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace griphon::topology
