// Tests for the workload generators and the comparison baselines.
#include <gtest/gtest.h>

#include "baseline/sonet_bod.hpp"
#include "baseline/static_provisioning.hpp"
#include "baseline/store_forward.hpp"
#include "core/scenario.hpp"
#include "workload/arrivals.hpp"
#include "workload/bulk_transfer.hpp"
#include "workload/calendar.hpp"
#include "workload/diurnal.hpp"

namespace griphon {
namespace {

TEST(BulkScheduler, JobLifecycle) {
  core::TestbedScenario s(70);
  workload::BulkScheduler sched(&s.engine, s.portal.get());
  std::optional<workload::BulkJob> done;
  const std::int64_t bytes = 9'000'000'000'000;  // 9 TB
  sched.submit(s.site_i, s.site_iv, bytes, rates::k10G,
               [&](const workload::BulkJob& j) { done = j; });
  s.engine.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->failed);
  // 9 TB at 10G = 7200 s + setup/teardown overheads.
  EXPECT_GT(to_seconds(done->completion_time()), 7200.0);
  EXPECT_LT(to_seconds(done->completion_time()), 7200.0 + 300.0);
  // The DAG executor cuts 1-hop setup to ~29 s (sequential was ~62 s); the
  // overhead is still far from free.
  EXPECT_GT(to_seconds(done->setup_overhead()), 20.0);
  EXPECT_EQ(sched.completed(), 1u);
  // Bandwidth was released at completion.
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
}

TEST(BulkScheduler, CompositeRateJob) {
  core::TestbedScenario s(71);
  workload::BulkScheduler sched(&s.engine, s.portal.get());
  std::optional<workload::BulkJob> done;
  sched.submit(s.site_i, s.site_iv, 1'000'000'000'000, DataRate::gbps(12),
               [&](const workload::BulkJob& j) { done = j; });
  s.engine.run();
  ASSERT_TRUE(done && !done->failed);
  // Effective rate is the decomposition total (slightly above 12G); allow
  // for the bundle setup/teardown overhead on top of the fluid time.
  const double secs_at_12g = 1e12 * 8 / 12e9;
  EXPECT_LT(to_seconds(done->completion_time()), secs_at_12g + 200.0);
  EXPECT_GT(to_seconds(done->completion_time()), secs_at_12g * 0.9);
}

TEST(BulkScheduler, FailureReported) {
  core::TestbedScenario s(72);
  // Quota too small for the job's rate.
  core::CustomerPortal tiny(s.controller.get(), s.csp, DataRate::gbps(5));
  workload::BulkScheduler sched(&s.engine, &tiny);
  std::optional<workload::BulkJob> done;
  sched.submit(s.site_i, s.site_iv, 1000, rates::k10G,
               [&](const workload::BulkJob& j) { done = j; });
  s.engine.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->failed);
  EXPECT_EQ(sched.failed(), 1u);
}

TEST(PoissonLoad, GeneratesAndCompletes) {
  core::TestbedScenario s(73);
  workload::PoissonConnectionLoad::Params p;
  p.arrivals_per_hour = 30;
  p.mean_holding = minutes(30);
  p.rate = rates::k1G;  // OTN circuits: fast setup, low resource use
  p.pairs = {{s.site_i, s.site_iv}, {s.site_i, s.site_iii}};
  workload::PoissonConnectionLoad load(&s.engine, s.portal.get(), p);
  load.run_until(hours(6));
  s.engine.run();
  const auto& st = load.stats();
  EXPECT_GT(st.offered, 100u);
  EXPECT_EQ(st.offered, st.accepted + st.blocked + st.errored);
  EXPECT_EQ(st.errored, 0u);
}

TEST(PoissonLoad, HigherLoadBlocksMore) {
  auto run = [](double per_hour) {
    core::TestbedScenario s(74);
    workload::PoissonConnectionLoad::Params p;
    p.arrivals_per_hour = per_hour;
    p.mean_holding = hours(2);
    p.rate = rates::k1G;
    p.pairs = {{s.site_i, s.site_iv}};
    workload::PoissonConnectionLoad load(&s.engine, s.portal.get(), p);
    load.run_until(hours(24));
    s.engine.run();
    return load.stats().blocking_probability();
  };
  EXPECT_LE(run(1.0), run(40.0));
  EXPECT_GT(run(40.0), 0.0);  // NTE has 4 ports; heavy load must block
}

TEST(Diurnal, PeakAndTrough) {
  workload::DiurnalProfile prof(DataRate::gbps(8), DataRate::gbps(2),
                                /*peak_hour=*/20);
  EXPECT_NEAR(prof.demand_at(hours(20)).in_gbps(), 8.0, 0.01);
  EXPECT_NEAR(prof.demand_at(hours(8)).in_gbps(), 2.0, 0.01);
  // Midpoint between peak and trough.
  EXPECT_NEAR(prof.demand_at(hours(14)).in_gbps(), 5.0, 0.01);
  // 24 h periodicity.
  EXPECT_NEAR(prof.demand_at(hours(20 + 24)).in_gbps(), 8.0, 0.01);
}

TEST(Diurnal, LeftoverClampsAtZero) {
  workload::DiurnalProfile prof(DataRate::gbps(12), DataRate::gbps(2), 20);
  EXPECT_EQ(prof.leftover_at(hours(20), DataRate::gbps(10)), DataRate{});
  EXPECT_GT(prof.leftover_at(hours(8), DataRate::gbps(10)),
            DataRate::gbps(7));
}

TEST(StaticProvisioning, LeadTimeIsWeeks) {
  Rng rng(1);
  baseline::StaticProvisioningModel model;
  for (int i = 0; i < 20; ++i) {
    const SimTime t = model.provisioning_time(rng);
    EXPECT_GE(t, hours(24 * 14));
    EXPECT_LE(t, hours(24 * 56));
  }
}

TEST(StaticProvisioning, ColdTransferDominatedByLeadTime) {
  Rng rng(2);
  baseline::StaticProvisioningModel model;
  const SimTime t = model.transfer_cold(1'000'000'000'000, rates::k10G, rng);
  EXPECT_GT(t, hours(24 * 14));
}

TEST(StaticProvisioning, CircuitHours) {
  EXPECT_DOUBLE_EQ(
      baseline::StaticProvisioningModel::circuit_hours(hours(48), 2), 96.0);
}

TEST(ManualRepair, FourToTwelveHours) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const SimTime t = baseline::ManualRepairModel::repair_time(rng);
    EXPECT_GE(t, hours(4));
    EXPECT_LE(t, hours(12));
  }
}

TEST(SonetBod, ProvisionWithinCeiling) {
  sonet::SonetRing ring({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 192);
  baseline::SonetBodService bod(&ring);
  Rng rng(4);
  auto p = bod.request(NodeId{0}, NodeId{2}, rates::kOc12, rng);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(p.value().granted, rates::kOc12);
  // Electronic provisioning: minutes.
  EXPECT_GE(p.value().provisioning_time, seconds(60));
  EXPECT_LE(p.value().provisioning_time, seconds(180));
  ASSERT_TRUE(bod.release(p.value().circuit).ok());
}

TEST(SonetBod, RejectsAboveCeiling) {
  sonet::SonetRing ring({NodeId{0}, NodeId{1}, NodeId{2}}, 192);
  baseline::SonetBodService bod(&ring);
  Rng rng(4);
  const auto r = bod.request(NodeId{0}, NodeId{1}, rates::k1G, rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(StoreForward, DirectUsesLeftoverOnly) {
  // 10G pipe, interactive load 2..8G: mean leftover ~5G -> 1 TB takes
  // roughly 1600 s of pure transfer spread over leftover windows.
  baseline::StoreForwardPlanner::Leg leg{
      DataRate::gbps(10),
      workload::DiurnalProfile(DataRate::gbps(8), DataRate::gbps(2), 20)};
  const SimTime t = baseline::StoreForwardPlanner::direct_completion(
      1'000'000'000'000, leg, SimTime{});
  const double full_rate_secs = 1e12 * 8 / 10e9;
  EXPECT_GT(to_seconds(t), full_rate_secs);  // leftover < full pipe
  EXPECT_LT(to_seconds(t), full_rate_secs * 10);
}

TEST(StoreForward, RelayExploitsTimeZones) {
  // Legs peak at different hours: a relay can beat a direct leg that is
  // saturated in the evening.
  using Leg = baseline::StoreForwardPlanner::Leg;
  const Leg congested{DataRate::gbps(10),
                      workload::DiurnalProfile(DataRate::gbps(10),
                                               DataRate::gbps(6), 20)};
  const Leg east{DataRate::gbps(10),
                 workload::DiurnalProfile(DataRate::gbps(9),
                                          DataRate::gbps(1), 20)};
  const Leg west{DataRate::gbps(10),
                 workload::DiurnalProfile(DataRate::gbps(9),
                                          DataRate::gbps(1), 8)};
  const auto plan = baseline::StoreForwardPlanner::best(
      2'000'000'000'000, congested, {{east, west}}, hours(18));
  const SimTime direct = baseline::StoreForwardPlanner::direct_completion(
      2'000'000'000'000, congested, hours(18));
  EXPECT_LE(plan.completion, direct);
}

TEST(StoreForward, RelayNeverBeatsInfiniteLeftover) {
  using Leg = baseline::StoreForwardPlanner::Leg;
  const Leg idle{DataRate::gbps(10),
                 workload::DiurnalProfile(DataRate{}, DataRate{}, 20)};
  const SimTime direct = baseline::StoreForwardPlanner::direct_completion(
      1'000'000'000'000, idle, SimTime{});
  const SimTime relay = baseline::StoreForwardPlanner::relay_completion(
      1'000'000'000'000, idle, idle, SimTime{});
  EXPECT_LE(direct, relay);  // store-then-forward adds at least a step
}

TEST(Calendar, BandwidthReadyWhenWindowOpens) {
  core::TestbedScenario s(130);
  workload::BandwidthCalendar cal(&s.engine, s.portal.get(), minutes(8));
  std::vector<workload::BandwidthCalendar::Reservation::State> states;
  const auto id = cal.reserve(
      s.site_i, s.site_iv, DataRate::gbps(12), hours(1), minutes(30),
      [&](const workload::BandwidthCalendar::Reservation& r) {
        states.push_back(r.state);
      });
  s.engine.run();
  using State = workload::BandwidthCalendar::Reservation::State;
  const auto& r = cal.reservation(id);
  EXPECT_EQ(r.state, State::kDone);
  // Provisioning -> active -> done, in order.
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], State::kProvisioning);
  EXPECT_EQ(states[1], State::kActive);
  EXPECT_EQ(states[2], State::kDone);
  // Bandwidth was live BEFORE (or exactly when) the window opened.
  EXPECT_LE(r.bandwidth_ready_at, r.window_start);
  EXPECT_EQ(cal.punctual(), 1u);
  EXPECT_EQ(cal.late(), 0u);
  // And everything was returned afterwards.
  EXPECT_EQ(s.portal->provisioned(), DataRate{});
}

TEST(Calendar, ShortNoticeIsLateButServed) {
  core::TestbedScenario s(131);
  workload::BandwidthCalendar cal(&s.engine, s.portal.get(), minutes(8));
  // Window opens in 20 s — far less than a wavelength setup takes.
  const auto id = cal.reserve(
      s.site_i, s.site_iv, rates::k10G, seconds(20), minutes(10),
      [&](const workload::BandwidthCalendar::Reservation&) {});
  s.engine.run();
  const auto& r = cal.reservation(id);
  EXPECT_EQ(r.state, workload::BandwidthCalendar::Reservation::State::kDone);
  EXPECT_GT(r.bandwidth_ready_at, r.window_start);
  EXPECT_EQ(cal.late(), 1u);
}

TEST(Calendar, BackToBackWindowsReuseThePool) {
  core::TestbedScenario s(132);
  workload::BandwidthCalendar cal(&s.engine, s.portal.get(), minutes(8));
  // Two 40G-composite windows that do not overlap: the same OT pool can
  // serve both because the first releases before the second provisions.
  int done = 0;
  const auto cb = [&](const workload::BandwidthCalendar::Reservation& r) {
    if (r.state == workload::BandwidthCalendar::Reservation::State::kDone)
      ++done;
  };
  cal.reserve(s.site_i, s.site_iv, DataRate::gbps(30), hours(1), minutes(30),
              cb);
  cal.reserve(s.site_i, s.site_iv, DataRate::gbps(30), hours(3), minutes(30),
              cb);
  s.engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(cal.punctual(), 2u);
  EXPECT_EQ(cal.failed(), 0u);
}

TEST(Calendar, RejectsBadWindows) {
  core::TestbedScenario s(133);
  workload::BandwidthCalendar cal(&s.engine, s.portal.get());
  s.engine.run_until(hours(2));
  EXPECT_THROW(cal.reserve(s.site_i, s.site_iv, rates::k1G, hours(1),
                           minutes(5), [](const auto&) {}),
               std::invalid_argument);
  EXPECT_THROW(cal.reserve(s.site_i, s.site_iv, rates::k1G, hours(3),
                           SimTime{}, [](const auto&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace griphon
