#!/usr/bin/env python3
"""Diff BENCH_*.json rows against a baseline and flag regressions.

Every bench binary emits flat rows of {bench, metric, value, unit} (see
bench/emit_json.hpp). CI stashes previous runs and calls this script to
compare: rows are matched by (bench, metric), and a row that got worse by
more than its noise floor is flagged.

Noise floors are per metric, read from a small JSON config
(--noise-config, see tools/bench_noise.json):

    {
      "default_pct": 10.0,
      "floors": {"setup_teardown/*_p95": 15.0, "chaos/*": 20.0}
    }

Floor keys are fnmatch patterns over "bench/metric"; the first matching
pattern (in file order) wins, the default applies otherwise. Without a
config, --threshold is the blanket floor for every metric.

History: with --history-dir the script keeps one baseline per commit —
the current run's files are stashed under <history-dir>/<sha>/ and the
comparison baseline is the most recent other entry (unless --baseline
provides one explicitly). --keep bounds the number of retained entries.

Whether "worse" means higher or lower depends on the metric:
  * time-like units (us, ms, s, seconds) are lower-is-better;
  * metrics whose name mentions overhead/blocking/missed/failed/latency/
    rejected/p50/p95/p99 are lower-is-better;
  * everything else (throughput, counts of good events, percentages of
    good events) is higher-is-better.

Series mode (--series): compare SERIES_*.json gauge-sampler rollups
(telemetry::GaugeSampler::rollups_json, DESIGN.md §14) instead of bench
rows. Each file is {"series": [{"name", "unit", "count", "min", "max",
"mean", "last"}, ...]}; the mean and max of every series become rows keyed
by (<file stem>, <series>_mean / <series>_max), so the same noise-floor
config, history stash and verdict machinery applies — give drifty gauges
(queue depths under chaos) their own floors via patterns like
"chaos/ems_*_queue_depth_max".

Exit status: 1 if any regression was flagged, 0 otherwise. A missing
baseline is not an error — first runs and cache evictions print a note and
exit 0 so CI lanes stay green while still publishing the report artifact.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import shutil
import sys

LOWER_IS_BETTER_UNITS = {"us", "ms", "s", "seconds"}
LOWER_IS_BETTER_HINTS = (
    "overhead",
    "blocking",
    "missed",
    "failed",
    "latency",
    "rejected",
    "p50",
    "p95",
    "p99",
    # gauge-sampler series (--series mode)
    "queue_depth",
    "blocked",
    "breaker_open",
    "dropped",
)


def lower_is_better(metric: str, unit: str) -> bool:
    if unit.lower() in LOWER_IS_BETTER_UNITS:
        return True
    name = metric.lower()
    return any(hint in name for hint in LOWER_IS_BETTER_HINTS)


class NoiseModel:
    """Per-metric regression floors, in percent."""

    def __init__(self, default_pct: float,
                 floors: list[tuple[str, float]]) -> None:
        self.default_pct = default_pct
        self.floors = floors  # ordered (pattern, pct); first match wins

    @staticmethod
    def load(path: str | None, fallback_pct: float) -> "NoiseModel":
        if path is None:
            return NoiseModel(fallback_pct, [])
        try:
            with open(path, encoding="utf-8") as f:
                cfg = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: unreadable noise config {path}: {err}; "
                  f"falling back to blanket {fallback_pct}%")
            return NoiseModel(fallback_pct, [])
        floors = [(str(pat), float(pct))
                  for pat, pct in cfg.get("floors", {}).items()]
        return NoiseModel(float(cfg.get("default_pct", fallback_pct)),
                          floors)

    def threshold_for(self, bench: str, metric: str) -> float:
        key = f"{bench}/{metric}"
        for pattern, pct in self.floors:
            if fnmatch.fnmatch(key, pattern):
                return pct
        return self.default_pct


def load_rows(directory: str) -> dict[tuple[str, str], dict]:
    """All BENCH_*.json rows in `directory`, keyed by (bench, metric)."""
    rows: dict[tuple[str, str], dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable {path}: {err}")
            continue
        for row in data:
            try:
                key = (row["bench"], row["metric"])
                rows[key] = {
                    "value": float(row["value"]),
                    "unit": str(row.get("unit", "")),
                }
            except (KeyError, TypeError, ValueError):
                print(f"bench_diff: skipping malformed row in {path}: {row}")
    return rows


def load_series_rows(directory: str) -> dict[tuple[str, str], dict]:
    """All SERIES_*.json rollups in `directory`: the mean and max of each
    sampled series, keyed by (file stem, <series>_mean / <series>_max)."""
    rows: dict[tuple[str, str], dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "SERIES_*.json"))):
        stem = os.path.basename(path)[len("SERIES_"):-len(".json")]
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable {path}: {err}")
            continue
        for s in data.get("series", []):
            try:
                name, unit = str(s["name"]), str(s.get("unit", ""))
                rows[(stem, name + "_mean")] = {
                    "value": float(s["mean"]), "unit": unit}
                rows[(stem, name + "_max")] = {
                    "value": float(s["max"]), "unit": unit}
            except (KeyError, TypeError, ValueError):
                print(f"bench_diff: skipping malformed series in {path}: "
                      f"{s}")
    return rows


def history_entries(history_dir: str) -> list[str]:
    """Baseline directories under `history_dir`, oldest first."""
    if not os.path.isdir(history_dir):
        return []
    entries = [os.path.join(history_dir, name)
               for name in os.listdir(history_dir)
               if os.path.isdir(os.path.join(history_dir, name))]
    return sorted(entries, key=os.path.getmtime)


def pick_history_baseline(history_dir: str, sha: str | None) -> str | None:
    """Most recent history entry that is not the current sha."""
    for entry in reversed(history_entries(history_dir)):
        if sha is None or os.path.basename(entry) != sha:
            return entry
    return None


def stash_history(history_dir: str, sha: str, current_dir: str,
                  keep: int, pattern: str = "BENCH_*.json") -> None:
    dest = os.path.join(history_dir, sha)
    os.makedirs(dest, exist_ok=True)
    for path in glob.glob(os.path.join(current_dir, pattern)):
        shutil.copy(path, dest)
    # Touch so this entry sorts newest even when re-running a sha.
    os.utime(dest)
    entries = history_entries(history_dir)
    for stale in entries[:max(0, len(entries) - keep)]:
        shutil.rmtree(stale, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=None,
                        help="directory holding the baseline BENCH_*.json "
                             "(optional when --history-dir is set)")
    parser.add_argument("--current", required=True,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="blanket regression floor in percent when no "
                             "noise config covers a metric (default 10)")
    parser.add_argument("--noise-config", default=None,
                        help="JSON file with per-metric noise floors "
                             "(see tools/bench_noise.json)")
    parser.add_argument("--history-dir", default=None,
                        help="keep one baseline per commit under this "
                             "directory and compare against the newest")
    parser.add_argument("--sha", default=None,
                        help="current commit sha (names the history entry)")
    parser.add_argument("--keep", type=int, default=10,
                        help="historical baselines to retain (default 10)")
    parser.add_argument("--report", default=None,
                        help="also write the comparison table to this file")
    parser.add_argument("--series", action="store_true",
                        help="compare SERIES_*.json gauge-sampler rollups "
                             "(mean/max per series) instead of BENCH rows")
    args = parser.parse_args()

    noise = NoiseModel.load(args.noise_config, args.threshold)
    load = load_series_rows if args.series else load_rows
    pattern = "SERIES_*.json" if args.series else "BENCH_*.json"

    current = load(args.current)
    if not current:
        print(f"bench_diff: no {pattern} under {args.current}")
        return 1

    baseline_dir = args.baseline
    if (baseline_dir is None or not load(baseline_dir)) \
            and args.history_dir:
        picked = pick_history_baseline(args.history_dir, args.sha)
        if picked:
            print(f"bench_diff: baseline from history: {picked}")
            baseline_dir = picked
    baseline = load(baseline_dir) if baseline_dir else {}

    lines: list[str] = []
    regressions: list[str] = []
    if not baseline:
        lines.append(
            f"bench_diff: no baseline under {baseline_dir!r} — first run or "
            "evicted cache; nothing to compare (exit 0).")
    else:
        header = (f"{'bench':<20} {'metric':<42} {'baseline':>14} "
                  f"{'current':>14} {'delta':>9} {'floor':>7}  verdict")
        lines.append(header)
        lines.append("-" * len(header))
        for key in sorted(current):
            bench, metric = key
            cur = current[key]
            base = baseline.get(key)
            if base is None:
                lines.append(f"{bench:<20} {metric:<42} {'(new)':>14} "
                             f"{cur['value']:>14.4g} {'':>9} {'':>7}  "
                             "new metric")
                continue
            if base["value"] == 0:
                delta_pct = 0.0 if cur["value"] == 0 else float("inf")
            else:
                delta_pct = (cur["value"] / base["value"] - 1.0) * 100.0
            floor = noise.threshold_for(bench, metric)
            worse = (-delta_pct if lower_is_better(metric, cur["unit"])
                     else delta_pct) < -floor
            verdict = "REGRESSION" if worse else "ok"
            delta_str = ("n/a" if delta_pct == float("inf")
                         else f"{delta_pct:+8.1f}%")
            lines.append(f"{bench:<20} {metric:<42} {base['value']:>14.4g} "
                         f"{cur['value']:>14.4g} {delta_str:>9} "
                         f"{floor:>6.1f}%  {verdict}")
            if worse:
                regressions.append(
                    f"{bench}/{metric}: {base['value']:.4g} -> "
                    f"{cur['value']:.4g} ({delta_str}, floor {floor:.1f}%)")
        dropped = sorted(set(baseline) - set(current))
        for bench, metric in dropped:
            lines.append(f"{bench:<20} {metric:<42} "
                         f"{baseline[(bench, metric)]['value']:>14.4g} "
                         f"{'(gone)':>14} {'':>9} {'':>7}  dropped metric")

    if regressions:
        lines.append("")
        lines.append(f"{len(regressions)} regression(s) beyond their noise "
                     "floors:")
        lines.extend("  " + r for r in regressions)
    else:
        lines.append("")
        lines.append("no regressions beyond noise floors")

    text = "\n".join(lines)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(text + "\n")

    if args.history_dir and args.sha:
        stash_history(args.history_dir, args.sha, args.current, args.keep,
                      pattern)
        print(f"bench_diff: stashed {args.sha} in {args.history_dir} "
              f"(keep {args.keep})")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
