#!/usr/bin/env python3
"""Diff BENCH_*.json rows against a previous run and flag regressions.

Every bench binary emits flat rows of {bench, metric, value, unit} (see
bench/emit_json.hpp). CI stashes the previous run's files and calls this
script to compare: rows are matched by (bench, metric), and a row that got
worse by more than the threshold (default 10%) is flagged.

Whether "worse" means higher or lower depends on the metric:
  * time-like units (us, ms, s, seconds) are lower-is-better;
  * metrics whose name mentions overhead/blocking/missed/failed/latency/
    rejected/p50/p95/p99 are lower-is-better;
  * everything else (throughput, counts of good events, percentages of
    good events) is higher-is-better.

Exit status: 1 if any regression was flagged, 0 otherwise. A missing
baseline is not an error — first runs and cache evictions print a note and
exit 0 so CI lanes stay green while still publishing the report artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

LOWER_IS_BETTER_UNITS = {"us", "ms", "s", "seconds"}
LOWER_IS_BETTER_HINTS = (
    "overhead",
    "blocking",
    "missed",
    "failed",
    "latency",
    "rejected",
    "p50",
    "p95",
    "p99",
)


def lower_is_better(metric: str, unit: str) -> bool:
    if unit.lower() in LOWER_IS_BETTER_UNITS:
        return True
    name = metric.lower()
    return any(hint in name for hint in LOWER_IS_BETTER_HINTS)


def load_rows(directory: str) -> dict[tuple[str, str], dict]:
    """All BENCH_*.json rows in `directory`, keyed by (bench, metric)."""
    rows: dict[tuple[str, str], dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable {path}: {err}")
            continue
        for row in data:
            try:
                key = (row["bench"], row["metric"])
                rows[key] = {
                    "value": float(row["value"]),
                    "unit": str(row.get("unit", "")),
                }
            except (KeyError, TypeError, ValueError):
                print(f"bench_diff: skipping malformed row in {path}: {row}")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding the previous BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--report", default=None,
                        help="also write the comparison table to this file")
    args = parser.parse_args()

    current = load_rows(args.current)
    if not current:
        print(f"bench_diff: no BENCH_*.json under {args.current}")
        return 1
    baseline = load_rows(args.baseline)

    lines: list[str] = []
    regressions: list[str] = []
    if not baseline:
        lines.append(
            f"bench_diff: no baseline under {args.baseline!r} — first run or "
            "evicted cache; nothing to compare (exit 0).")
    else:
        header = (f"{'bench':<20} {'metric':<42} {'baseline':>14} "
                  f"{'current':>14} {'delta':>9}  verdict")
        lines.append(header)
        lines.append("-" * len(header))
        for key in sorted(current):
            bench, metric = key
            cur = current[key]
            base = baseline.get(key)
            if base is None:
                lines.append(f"{bench:<20} {metric:<42} {'(new)':>14} "
                             f"{cur['value']:>14.4g} {'':>9}  new metric")
                continue
            if base["value"] == 0:
                delta_pct = 0.0 if cur["value"] == 0 else float("inf")
            else:
                delta_pct = (cur["value"] / base["value"] - 1.0) * 100.0
            worse = (-delta_pct if lower_is_better(metric, cur["unit"])
                     else delta_pct) < -args.threshold
            verdict = "REGRESSION" if worse else "ok"
            delta_str = ("n/a" if delta_pct == float("inf")
                         else f"{delta_pct:+8.1f}%")
            lines.append(f"{bench:<20} {metric:<42} {base['value']:>14.4g} "
                         f"{cur['value']:>14.4g} {delta_str:>9}  {verdict}")
            if worse:
                regressions.append(
                    f"{bench}/{metric}: {base['value']:.4g} -> "
                    f"{cur['value']:.4g} ({delta_str})")
        dropped = sorted(set(baseline) - set(current))
        for bench, metric in dropped:
            lines.append(f"{bench:<20} {metric:<42} "
                         f"{baseline[(bench, metric)]['value']:>14.4g} "
                         f"{'(gone)':>14} {'':>9}  dropped metric")

    if regressions:
        lines.append("")
        lines.append(f"{len(regressions)} regression(s) beyond "
                     f"{args.threshold:.0f}%:")
        lines.extend("  " + r for r in regressions)
    else:
        lines.append("")
        lines.append("no regressions beyond threshold")

    text = "\n".join(lines)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
