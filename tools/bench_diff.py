#!/usr/bin/env python3
"""Diff BENCH_*.json rows against a baseline and flag regressions.

Every bench binary emits flat rows of {bench, metric, value, unit} (see
bench/emit_json.hpp). CI stashes previous runs and calls this script to
compare: rows are matched by (bench, metric), and a row that got worse by
more than its noise floor is flagged.

Noise floors are per metric, read from a small JSON config
(--noise-config, see tools/bench_noise.json):

    {
      "default_pct": 10.0,
      "floors": {"setup_teardown/*_p95": 15.0, "chaos/*": 20.0}
    }

Floor keys are fnmatch patterns over "bench/metric"; the first matching
pattern (in file order) wins, the default applies otherwise. Without a
config, --threshold is the blanket floor for every metric.

History: with --history-dir the script keeps one baseline per commit —
the current run's files are stashed under <history-dir>/<sha>/ and the
comparison baseline is the most recent other entry (unless --baseline
provides one explicitly). --keep bounds the number of retained entries.

Whether "worse" means higher or lower depends on the metric:
  * time-like units (us, ms, s, seconds) are lower-is-better;
  * metrics whose name mentions overhead/blocking/missed/failed/latency/
    rejected/p50/p95/p99 are lower-is-better;
  * everything else (throughput, counts of good events, percentages of
    good events) is higher-is-better.

Series mode (--series): compare SERIES_*.json gauge-sampler rollups
(telemetry::GaugeSampler::rollups_json, DESIGN.md §14) instead of bench
rows. Each file is {"series": [{"name", "unit", "count", "min", "max",
"mean", "last"}, ...]}; the mean and max of every series become rows keyed
by (<file stem>, <series>_mean / <series>_max), so the same noise-floor
config, history stash and verdict machinery applies — give drifty gauges
(queue depths under chaos) their own floors via patterns like
"chaos/ems_*_queue_depth_max".

Exit status: 1 if any regression was flagged, 0 otherwise. A missing
baseline is not an error — first runs, evicted caches and histories that
only contain the current commit (e.g. a re-run on the same sha) print a
note and exit 0 so CI lanes stay green while still publishing the report
artifact. When --history-dir is used without --sha, the sha defaults to
`git rev-parse HEAD` so a restored cache from the same commit can never be
mistaken for a prior baseline (self-diff would vacuously pass).

`--self-test` runs the script against synthetic fixtures in a temp
directory (regression, improvement, first-run, same-sha-only history) and
exits 0 only if every case produced the expected verdict and exit code;
CI runs it before trusting the real comparison.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import shutil
import subprocess
import sys

LOWER_IS_BETTER_UNITS = {"us", "ms", "s", "seconds"}
LOWER_IS_BETTER_HINTS = (
    "overhead",
    "blocking",
    "missed",
    "failed",
    "latency",
    "rejected",
    "p50",
    "p95",
    "p99",
    # gauge-sampler series (--series mode)
    "queue_depth",
    "blocked",
    "breaker_open",
    "dropped",
)


def lower_is_better(metric: str, unit: str) -> bool:
    if unit.lower() in LOWER_IS_BETTER_UNITS:
        return True
    name = metric.lower()
    return any(hint in name for hint in LOWER_IS_BETTER_HINTS)


class NoiseModel:
    """Per-metric regression floors, in percent."""

    def __init__(self, default_pct: float,
                 floors: list[tuple[str, float]]) -> None:
        self.default_pct = default_pct
        self.floors = floors  # ordered (pattern, pct); first match wins

    @staticmethod
    def load(path: str | None, fallback_pct: float) -> "NoiseModel":
        if path is None:
            return NoiseModel(fallback_pct, [])
        try:
            with open(path, encoding="utf-8") as f:
                cfg = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: unreadable noise config {path}: {err}; "
                  f"falling back to blanket {fallback_pct}%")
            return NoiseModel(fallback_pct, [])
        floors = [(str(pat), float(pct))
                  for pat, pct in cfg.get("floors", {}).items()]
        return NoiseModel(float(cfg.get("default_pct", fallback_pct)),
                          floors)

    def threshold_for(self, bench: str, metric: str) -> float:
        key = f"{bench}/{metric}"
        for pattern, pct in self.floors:
            if fnmatch.fnmatch(key, pattern):
                return pct
        return self.default_pct


def load_rows(directory: str) -> dict[tuple[str, str], dict]:
    """All BENCH_*.json rows in `directory`, keyed by (bench, metric)."""
    rows: dict[tuple[str, str], dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable {path}: {err}")
            continue
        for row in data:
            try:
                key = (row["bench"], row["metric"])
                rows[key] = {
                    "value": float(row["value"]),
                    "unit": str(row.get("unit", "")),
                }
            except (KeyError, TypeError, ValueError):
                print(f"bench_diff: skipping malformed row in {path}: {row}")
    return rows


def load_series_rows(directory: str) -> dict[tuple[str, str], dict]:
    """All SERIES_*.json rollups in `directory`: the mean and max of each
    sampled series, keyed by (file stem, <series>_mean / <series>_max)."""
    rows: dict[tuple[str, str], dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "SERIES_*.json"))):
        stem = os.path.basename(path)[len("SERIES_"):-len(".json")]
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable {path}: {err}")
            continue
        for s in data.get("series", []):
            try:
                name, unit = str(s["name"]), str(s.get("unit", ""))
                rows[(stem, name + "_mean")] = {
                    "value": float(s["mean"]), "unit": unit}
                rows[(stem, name + "_max")] = {
                    "value": float(s["max"]), "unit": unit}
            except (KeyError, TypeError, ValueError):
                print(f"bench_diff: skipping malformed series in {path}: "
                      f"{s}")
    return rows


def history_entries(history_dir: str) -> list[str]:
    """Baseline directories under `history_dir`, oldest first."""
    if not os.path.isdir(history_dir):
        return []
    entries = [os.path.join(history_dir, name)
               for name in os.listdir(history_dir)
               if os.path.isdir(os.path.join(history_dir, name))]
    return sorted(entries, key=os.path.getmtime)


def pick_history_baseline(history_dir: str, sha: str | None) -> str | None:
    """Most recent history entry that is not the current sha."""
    for entry in reversed(history_entries(history_dir)):
        if sha is None or os.path.basename(entry) != sha:
            return entry
    return None


def stash_history(history_dir: str, sha: str, current_dir: str,
                  keep: int, pattern: str = "BENCH_*.json") -> None:
    dest = os.path.join(history_dir, sha)
    os.makedirs(dest, exist_ok=True)
    for path in glob.glob(os.path.join(current_dir, pattern)):
        shutil.copy(path, dest)
    # Touch so this entry sorts newest even when re-running a sha.
    os.utime(dest)
    entries = history_entries(history_dir)
    for stale in entries[:max(0, len(entries) - keep)]:
        shutil.rmtree(stale, ignore_errors=True)


def self_test() -> int:
    """Exercise the verdict machinery on synthetic fixtures. Each case
    re-enters main() with scratch directories; a wrong exit code or a
    missing/unexpected verdict string fails the self-test."""
    import contextlib
    import io
    import tempfile

    def write_rows(directory: str, value: float, metric: str = "plans_sec",
                   unit: str = "1/s") -> None:
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "BENCH_fixture.json"), "w",
                  encoding="utf-8") as f:
            json.dump([{"bench": "fixture", "metric": metric,
                        "value": value, "unit": unit}], f)

    def run_case(name: str, argv: list[str], want_rc: int,
                 want_text: str | None = None) -> bool:
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = main(argv)
        ok = rc == want_rc and (want_text is None or want_text in
                                out.getvalue())
        print(f"self-test [{name}] rc={rc} (want {want_rc})"
              + ("" if want_text is None else
                 f", text {'found' if want_text in out.getvalue() else 'MISSING'}")
              + f": {'ok' if ok else 'FAIL'}")
        if not ok:
            print("  --- case output ---")
            print("  " + out.getvalue().replace("\n", "\n  "))
        return ok

    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench_diff_selftest_") as tmp:
        base = os.path.join(tmp, "base")
        cur = os.path.join(tmp, "cur")

        # Throughput drop past the floor: regression, exit 1.
        write_rows(base, 1000.0)
        write_rows(cur, 500.0)
        failures += not run_case(
            "regression",
            ["--baseline", base, "--current", cur, "--threshold", "10"],
            1, "REGRESSION")

        # Same drop inside a generous floor: ok, exit 0.
        failures += not run_case(
            "within-floor",
            ["--baseline", base, "--current", cur, "--threshold", "60"],
            0, "no regressions")

        # Lower-is-better metric getting smaller is an improvement.
        lat_base = os.path.join(tmp, "lat_base")
        lat_cur = os.path.join(tmp, "lat_cur")
        write_rows(lat_base, 100.0, metric="setup_p99", unit="us")
        write_rows(lat_cur, 50.0, metric="setup_p99", unit="us")
        failures += not run_case(
            "lower-is-better",
            ["--baseline", lat_base, "--current", lat_cur,
             "--threshold", "10"],
            0, "no regressions")

        # No baseline at all: note + exit 0.
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty, exist_ok=True)
        failures += not run_case(
            "first-run",
            ["--baseline", empty, "--current", cur],
            0, "nothing to compare")

        # History that only holds the current sha (restored cache from the
        # same commit): must NOT self-diff — note + exit 0, and the run
        # stays stashed for the next commit.
        hist = os.path.join(tmp, "hist")
        write_rows(os.path.join(hist, "sha-current"), 500.0)
        failures += not run_case(
            "same-sha-history",
            ["--current", cur, "--history-dir", hist, "--sha",
             "sha-current"],
            0, "no entries from other commits")

        # Same history once another commit exists: real comparison again.
        write_rows(os.path.join(hist, "sha-older"), 1000.0)
        os.utime(os.path.join(hist, "sha-current"))  # current stays newest
        failures += not run_case(
            "history-baseline",
            ["--current", cur, "--history-dir", hist, "--sha",
             "sha-current", "--threshold", "10"],
            1, "baseline from history")

    print(f"bench_diff self-test: "
          f"{'PASS' if failures == 0 else f'{failures} failure(s)'}")
    return 0 if failures == 0 else 1


def current_git_sha() -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout.strip() or None
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=None,
                        help="directory holding the baseline BENCH_*.json "
                             "(optional when --history-dir is set)")
    parser.add_argument("--current", default=None,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="blanket regression floor in percent when no "
                             "noise config covers a metric (default 10)")
    parser.add_argument("--noise-config", default=None,
                        help="JSON file with per-metric noise floors "
                             "(see tools/bench_noise.json)")
    parser.add_argument("--history-dir", default=None,
                        help="keep one baseline per commit under this "
                             "directory and compare against the newest")
    parser.add_argument("--sha", default=None,
                        help="current commit sha (names the history entry)")
    parser.add_argument("--keep", type=int, default=10,
                        help="historical baselines to retain (default 10)")
    parser.add_argument("--report", default=None,
                        help="also write the comparison table to this file")
    parser.add_argument("--series", action="store_true",
                        help="compare SERIES_*.json gauge-sampler rollups "
                             "(mean/max per series) instead of BENCH rows")
    parser.add_argument("--self-test", action="store_true",
                        help="run fixture-based self-tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.current is None:
        parser.error("--current is required (unless --self-test)")

    if args.history_dir and args.sha is None:
        args.sha = current_git_sha()
        if args.sha:
            print(f"bench_diff: --sha defaulted to HEAD ({args.sha[:12]})")
        else:
            print("bench_diff: warning: --sha not given and git HEAD "
                  "unavailable — a restored cache from this same commit "
                  "would self-compare")

    noise = NoiseModel.load(args.noise_config, args.threshold)
    load = load_series_rows if args.series else load_rows
    pattern = "SERIES_*.json" if args.series else "BENCH_*.json"

    current = load(args.current)
    if not current:
        print(f"bench_diff: no {pattern} under {args.current}")
        return 1

    baseline_dir = args.baseline
    if (baseline_dir is None or not load(baseline_dir)) \
            and args.history_dir:
        picked = pick_history_baseline(args.history_dir, args.sha)
        if picked:
            print(f"bench_diff: baseline from history: {picked}")
            baseline_dir = picked
    baseline = load(baseline_dir) if baseline_dir else {}

    lines: list[str] = []
    regressions: list[str] = []
    if not baseline:
        if baseline_dir is None and args.history_dir:
            lines.append(
                "bench_diff: no prior baseline — history under "
                f"{args.history_dir!r} has no entries from other commits "
                "(first run on this branch, evicted cache, or a re-run on "
                "the same sha); nothing to compare (exit 0).")
        elif baseline_dir is None:
            lines.append(
                "bench_diff: no baseline given (--baseline/--history-dir) "
                "— nothing to compare (exit 0).")
        else:
            lines.append(
                f"bench_diff: no baseline under {baseline_dir!r} — first "
                "run or evicted cache; nothing to compare (exit 0).")
    else:
        header = (f"{'bench':<20} {'metric':<42} {'baseline':>14} "
                  f"{'current':>14} {'delta':>9} {'floor':>7}  verdict")
        lines.append(header)
        lines.append("-" * len(header))
        for key in sorted(current):
            bench, metric = key
            cur = current[key]
            base = baseline.get(key)
            if base is None:
                lines.append(f"{bench:<20} {metric:<42} {'(new)':>14} "
                             f"{cur['value']:>14.4g} {'':>9} {'':>7}  "
                             "new metric")
                continue
            if base["value"] == 0:
                delta_pct = 0.0 if cur["value"] == 0 else float("inf")
            else:
                delta_pct = (cur["value"] / base["value"] - 1.0) * 100.0
            floor = noise.threshold_for(bench, metric)
            worse = (-delta_pct if lower_is_better(metric, cur["unit"])
                     else delta_pct) < -floor
            verdict = "REGRESSION" if worse else "ok"
            delta_str = ("n/a" if delta_pct == float("inf")
                         else f"{delta_pct:+8.1f}%")
            lines.append(f"{bench:<20} {metric:<42} {base['value']:>14.4g} "
                         f"{cur['value']:>14.4g} {delta_str:>9} "
                         f"{floor:>6.1f}%  {verdict}")
            if worse:
                regressions.append(
                    f"{bench}/{metric}: {base['value']:.4g} -> "
                    f"{cur['value']:.4g} ({delta_str}, floor {floor:.1f}%)")
        dropped = sorted(set(baseline) - set(current))
        for bench, metric in dropped:
            lines.append(f"{bench:<20} {metric:<42} "
                         f"{baseline[(bench, metric)]['value']:>14.4g} "
                         f"{'(gone)':>14} {'':>9} {'':>7}  dropped metric")

    if regressions:
        lines.append("")
        lines.append(f"{len(regressions)} regression(s) beyond their noise "
                     "floors:")
        lines.extend("  " + r for r in regressions)
    else:
        lines.append("")
        lines.append("no regressions beyond noise floors")

    text = "\n".join(lines)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(text + "\n")

    if args.history_dir and args.sha:
        stash_history(args.history_dir, args.sha, args.current, args.keep,
                      pattern)
        print(f"bench_diff: stashed {args.sha} in {args.history_dir} "
              f"(keep {args.keep})")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
