#!/usr/bin/env python3
"""griphon-lint: repo-specific invariants clang-tidy cannot express.

Checks (DESIGN.md §10):

  metric-name      Metric names registered on telemetry::MetricsRegistry must
                   follow the `griphon_<layer>_<name>` scheme (lower-case
                   [a-z0-9_], >= 3 tokens), and <layer> must come from the
                   known-layer allowlist (KNOWN_LAYERS below — includes the
                   observability families `griphon_slo_*` and
                   `griphon_sampler_*`). Literal name arguments are checked
                   in full; dynamic names built from a literal prefix (e.g.
                   "griphon_ems_" + domain + "_suffix") have prefix and
                   suffix literals checked against the same grammar.
  banned-call      Library code under src/ must not call rand()/srand()
                   (use griphon::Rng), time() (use sim::Engine::now()), or
                   write to std::cout (route through sim::Trace / telemetry).
                   Tests, benches and examples are exempt: they own stdout.
  pragma-once      Every header uses `#pragma once` (before any include),
                   never #ifndef guards.
  include-order    In .cpp files: the file's own header first, then a block
                   of <angle> includes, then "quoted" project includes —
                   no angle include after the first quoted one.
  nodiscard        Every function declared in a src/ header returning
                   Result<T>, Status, ErrorCode or FaultDecision carries
                   [[nodiscard]]. Ignoring one of these is always a latent
                   bug in a setup or restore path (see ISSUE 3 / DESIGN.md
                   §10); a dropped FaultDecision means a chaos hook's
                   verdict (drop/duplicate/delay a frame) is silently
                   ignored and fault injection goes dark (DESIGN.md §12).
  no-artifacts     No build artifacts tracked by git: nothing under build*/,
                   no object/archive/ninja/CMake-cache files, no binary
                   blobs (NUL byte in the first 8 KiB).
  raw-sync         Library code under src/ must not use std::mutex /
                   std::lock_guard / std::thread / std::condition_variable
                   etc. directly — use the annotated wrappers in
                   common/sync.hpp (Mutex, MutexLock, CondVar) so Clang
                   thread-safety analysis sees every lock (DESIGN.md §15).
                   src/common/sync.hpp itself (the wrapper implementation)
                   is exempt. Tests/benches may spawn std::thread.
  detached-thread  No `.detach()` anywhere in the tree: a detached thread
                   outlives the scope that can join it, which breaks both
                   TSan shutdown and run-to-run determinism.
  mutable-global   No static-storage mutable data in src/ (`static` /
                   `inline static` declarations that are not const or
                   constexpr): hidden global state is invisible to the
                   capability annotations and breaks replay determinism.
                   Static member *functions* are fine.
  guarded-member   Every `Mutex foo_;` member declared in a src/ header
                   must be referenced by at least one GUARDED_BY(foo_) /
                   PT_GUARDED_BY(foo_) in the same file — a mutex that
                   guards nothing is either dead or (worse) the guarded
                   members were left unannotated, which silently disables
                   the analysis for them.

Usage:
    tools/griphon_lint.py [--report griphon_lint_report.txt] [paths...]
    tools/griphon_lint.py --self-test   # run fixture-based negative tests

Exit status: 0 clean, 1 findings, 2 usage error.
Suppression: a finding line may be waived with a trailing
`// griphon-lint: allow(<check-id>) <justification>` comment; the
justification is mandatory and findings without one stay fatal.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_DIRS = ("src", "tests", "bench", "examples")

# --- shared helpers ---------------------------------------------------------


def repo_files(subdirs: tuple[str, ...], exts: tuple[str, ...]) -> list[str]:
    out: list[str] = []
    for sub in subdirs:
        root = os.path.join(REPO_ROOT, sub)
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(exts):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay exact."""

    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # A quote directly after an identifier char is a C++14 digit
                # separator (64'000), not a char literal.
                prev = out[-1] if out else ""
                if not (prev.isalnum() or prev == "_"):
                    state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" " if c != "\n" else c)
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, check: str, message: str):
        self.path = os.path.relpath(path, REPO_ROOT)
        self.line = line
        self.check = check
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


ALLOW_RE = re.compile(
    r"//\s*griphon-lint:\s*allow\((?P<check>[a-z-]+)\)\s+(?P<why>\S.*)"
)


def allowed(lines: list[str], finding: Finding) -> bool:
    """True if the finding's source line carries a justified allow-comment."""
    if finding.line - 1 >= len(lines):
        return False
    m = ALLOW_RE.search(lines[finding.line - 1])
    return bool(m) and m.group("check") == finding.check


# --- metric-name ------------------------------------------------------------

FULL_NAME_RE = re.compile(r"^griphon(_[a-z0-9]+){2,}$")
PREFIX_NAME_RE = re.compile(r"^griphon(_[a-z0-9]+)+_$")
SUFFIX_NAME_RE = re.compile(r"^[a-z0-9]+(_[a-z0-9]+)*$")

# The <layer> token of griphon_<layer>_<name>. A metric outside these
# families is either a typo (griphon_slo vs griphon_sl0) or a new layer —
# new layers are fine, but must be added here deliberately so the family
# namespace stays curated (DESIGN.md §10, §14).
KNOWN_LAYERS = frozenset({
    "bod",        # reservation calendar / admission / transfer scheduler
    "chaos",      # fault injector
    "controller", # GriphonController setup/restore/resync
    "ems",        # per-domain EMS servers
    "failure",    # failure manager / alarm correlation
    "otn",        # OTN mux layer
    "plant",      # inventory / optical plant gauges
    "portal",     # customer-facing portal
    "reopt",      # global re-optimization / defragmentation
    "restoration", # storm pipeline: queue/backlog/in-flight/preemptions
    "rwa",        # routing + wavelength assignment
    "sampler",    # telemetry::GaugeSampler self-metrics
    "slo",        # telemetry::SloMonitor alert/violation metrics
})


def layer_of(name: str) -> str:
    """The <layer> token of a scheme-conformant name or prefix."""
    parts = name.split("_")
    return parts[1] if len(parts) > 1 else ""

REGISTER_LITERAL_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*\"(?P<name>[^\"]*)\"", re.S
)
REGISTER_DYNAMIC_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*(?P<var>\w+)\s*\+\s*"
    r"\"(?P<suffix>[^\"]*)\"",
    re.S,
)
GRIPHON_LITERAL_RE = re.compile(r"\"(?P<lit>griphon_[a-z0-9_]*)\"")

# The scheme implementation and its tests legitimately mention bare
# "griphon_" fragments (name_ok parsing, negative test cases).
METRIC_NAME_EXEMPT = (
    os.path.join("src", "telemetry", "metrics.cpp"),
    os.path.join("src", "telemetry", "metrics.hpp"),
)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def check_metric_names(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".cpp", ".hpp")):
        rel = os.path.relpath(path, REPO_ROOT)
        if rel in METRIC_NAME_EXEMPT:
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for m in REGISTER_LITERAL_RE.finditer(text):
            name = m.group("name")
            if not FULL_NAME_RE.match(name):
                findings.append(
                    Finding(
                        path,
                        line_of(text, m.start()),
                        "metric-name",
                        f'"{name}" violates griphon_<layer>_<name> '
                        "(lower-case, >= 3 tokens)",
                    )
                )
            elif layer_of(name) not in KNOWN_LAYERS:
                findings.append(
                    Finding(
                        path,
                        line_of(text, m.start()),
                        "metric-name",
                        f'"{name}": layer "{layer_of(name)}" is not in the '
                        "known-layer allowlist (add to KNOWN_LAYERS in "
                        "tools/griphon_lint.py if intentional)",
                    )
                )
        for m in REGISTER_DYNAMIC_RE.finditer(text):
            suffix = m.group("suffix")
            if not SUFFIX_NAME_RE.match(suffix):
                findings.append(
                    Finding(
                        path,
                        line_of(text, m.start()),
                        "metric-name",
                        f'dynamic metric suffix "{suffix}" is not '
                        "lower-case [a-z0-9_] tokens",
                    )
                )
        # Any griphon_* literal ending in '_' is a name prefix feeding a
        # dynamic registration; it must itself be scheme-conformant.
        for m in GRIPHON_LITERAL_RE.finditer(text):
            lit = m.group("lit")
            if not lit.endswith("_"):
                continue
            if not PREFIX_NAME_RE.match(lit):
                findings.append(
                    Finding(
                        path,
                        line_of(text, m.start()),
                        "metric-name",
                        f'metric-name prefix "{lit}" must be '
                        "griphon_<layer>_...",
                    )
                )
            elif layer_of(lit) not in KNOWN_LAYERS:
                findings.append(
                    Finding(
                        path,
                        line_of(text, m.start()),
                        "metric-name",
                        f'metric-name prefix "{lit}": layer '
                        f'"{layer_of(lit)}" is not in the known-layer '
                        "allowlist (add to KNOWN_LAYERS in "
                        "tools/griphon_lint.py if intentional)",
                    )
                )


# --- banned-call ------------------------------------------------------------

BANNED = (
    (
        re.compile(r"(?<![\w.:>])\b(?:rand|srand)\s*\("),
        "rand()/srand() — use griphon::Rng (deterministic, seedable)",
    ),
    (
        re.compile(r"(?<![\w.:>])\btime\s*\("),
        "time() — simulation code must use sim::Engine::now()",
    ),
    (
        re.compile(r"\bstd::cout\b"),
        "std::cout in library code — route through sim::Trace or telemetry",
    ),
)


def check_banned_calls(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".cpp", ".hpp")):
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for pattern, why in BANNED:
            for m in pattern.finditer(text):
                f = Finding(path, line_of(text, m.start()), "banned-call", why)
                if not allowed(raw_lines, f):
                    findings.append(f)


# --- pragma-once + include-order -------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?P<inc>[<"][^>"]+[>"])')
GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+\w+_(?:H|HPP|H_|HPP_)\b")


def check_headers(findings: list[Finding]) -> None:
    for path in repo_files(SOURCE_DIRS, (".hpp", ".h")):
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        pragma_line = None
        first_include = None
        for idx, line in enumerate(lines, start=1):
            if pragma_line is None and re.match(r"^\s*#\s*pragma\s+once", line):
                pragma_line = idx
            if first_include is None and INCLUDE_RE.match(line):
                first_include = idx
            if GUARD_RE.match(line):
                findings.append(
                    Finding(path, idx, "pragma-once",
                            "#ifndef include guard — use #pragma once")
                )
        if pragma_line is None:
            findings.append(
                Finding(path, 1, "pragma-once", "header lacks #pragma once")
            )
        elif first_include is not None and first_include < pragma_line:
            findings.append(
                Finding(path, pragma_line, "pragma-once",
                        "#pragma once must precede the first #include")
            )


def check_include_order(findings: list[Finding]) -> None:
    for path in repo_files(SOURCE_DIRS, (".cpp",)):
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        includes: list[tuple[int, str]] = []
        for idx, line in enumerate(lines, start=1):
            m = INCLUDE_RE.match(line)
            if m:
                includes.append((idx, m.group("inc")))
        if not includes:
            continue
        rel = os.path.relpath(path, REPO_ROOT)
        own = None
        if rel.startswith("src" + os.sep):
            # src/core/rwa.cpp must include "core/rwa.hpp" first.
            own = '"' + rel[len("src" + os.sep):-len(".cpp")] + '.hpp"'
            if os.path.exists(os.path.join(REPO_ROOT, "src", own.strip('"'))):
                if includes[0][1] != own:
                    findings.append(
                        Finding(path, includes[0][0], "include-order",
                                f"own header {own} must be the first include")
                    )
            else:
                own = None
        rest = includes[1:] if own is not None else includes
        seen_quote = False
        for idx, inc in rest:
            if inc.startswith('"'):
                seen_quote = True
            elif seen_quote:
                findings.append(
                    Finding(path, idx, "include-order",
                            f"system include {inc} after project includes — "
                            "group <system> before \"project\"")
                )


# --- nodiscard --------------------------------------------------------------

RESULT_DECL_RE = re.compile(
    r"(?P<ret>\bResult<[^;(){}]*?>|\bStatus\b|\bErrorCode\b|"
    r"\b(?:proto::)?FaultDecision\b)\s+"
    r"(?P<name>~?\w+)\s*\("
)
# Tokens that, appearing right before the return type, mean this is not a
# plain function declaration needing the attribute here.
PRECEDING_OK_RE = re.compile(
    r"(?:\[\[nodiscard\]\]|using\s+\w+\s*=|return|friend|::)\s*"
    r"(?:static\s+|virtual\s+|constexpr\s+|inline\s+|explicit\s+)*$"
)


def check_nodiscard(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".hpp",)):
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for m in RESULT_DECL_RE.finditer(text):
            ret, name = m.group("ret"), m.group("name")
            # Constructors / conversion declarations of the Result types
            # themselves ("Status(Error)") never match: name != type here
            # because the regex needs `<type> <name>(`.
            if name in ("Result", "Status", "ErrorCode", "FaultDecision"):
                continue
            before = text[: m.start()]
            # Look back past whitespace/specifiers for [[nodiscard]] or an
            # excluding context (using-alias, return statement, qualified
            # out-of-line definition, std::function signature).
            tail = before[-120:]
            if PRECEDING_OK_RE.search(tail):
                continue
            # Inside a template argument list e.g. std::function<void(Result<X>)>
            open_angle = tail.rfind("<")
            close_angle = tail.rfind(">")
            if open_angle > close_angle and "function" in tail:
                continue
            f = Finding(
                path,
                line_of(text, m.start()),
                "nodiscard",
                f"{ret} {name}(...) must be [[nodiscard]] — ignoring a "
                "Result/Status/ErrorCode is a latent provisioning bug",
            )
            if not allowed(raw_lines, f):
                findings.append(f)


# --- no-artifacts -----------------------------------------------------------

ARTIFACT_PATH_RE = re.compile(
    r"^build|(\.o|\.a|\.so|\.obj|\.ninja_deps|\.ninja_log)$|CMakeCache\.txt$"
)


def check_no_artifacts(findings: list[Finding]) -> None:
    try:
        tracked = subprocess.run(
            ["git", "ls-files", "-z"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout.split("\0")
    except (subprocess.CalledProcessError, FileNotFoundError):
        return  # not a git checkout (e.g. source tarball): nothing to check
    for rel in tracked:
        if not rel:
            continue
        if ARTIFACT_PATH_RE.search(rel):
            findings.append(
                Finding(os.path.join(REPO_ROOT, rel), 1, "no-artifacts",
                        "build artifact tracked by git — remove from index")
            )
            continue
        full = os.path.join(REPO_ROOT, rel)
        if not os.path.isfile(full):
            continue
        with open(full, "rb") as fh:
            if b"\0" in fh.read(8192):
                findings.append(
                    Finding(full, 1, "no-artifacts",
                            "binary blob tracked by git")
                )


# --- raw-sync ---------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?|thread|jthread)\b"
)
# The annotated wrappers are implemented in terms of std::mutex — that is
# the one place the raw primitives belong.
RAW_SYNC_EXEMPT = (os.path.join("src", "common", "sync.hpp"),)


def check_raw_sync(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".cpp", ".hpp")):
        rel = os.path.relpath(path, REPO_ROOT)
        if rel in RAW_SYNC_EXEMPT:
            continue
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for m in RAW_SYNC_RE.finditer(text):
            f = Finding(
                path,
                line_of(text, m.start()),
                "raw-sync",
                f"{m.group(0)} in library code — use the annotated "
                "Mutex/MutexLock/CondVar from common/sync.hpp so "
                "-Wthread-safety sees the lock (DESIGN.md §15)",
            )
            if not allowed(raw_lines, f):
                findings.append(f)


# --- detached-thread --------------------------------------------------------

DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")


def check_detached_thread(findings: list[Finding]) -> None:
    for path in repo_files(SOURCE_DIRS, (".cpp", ".hpp")):
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for m in DETACH_RE.finditer(text):
            f = Finding(
                path,
                line_of(text, m.start()),
                "detached-thread",
                "detached thread — nothing can join it, breaking TSan "
                "shutdown and replay determinism; keep the handle and join",
            )
            if not allowed(raw_lines, f):
                findings.append(f)


# --- mutable-global ---------------------------------------------------------

# `static <type> <name> = ...;` / `... {...};` / `...;` where the type is not
# const/constexpr and the declarator is data (no '(' — static member
# *functions* and factories are fine). Applied per line on comment-stripped
# text; multi-line declarations are rare enough that the annotation review
# catches them.
STATIC_DATA_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?!(?:const|constexpr)\b)"
    r"[\w:<>,&*]+(?:\s+[\w:<>,&*]+)*?\s+\w+\s*(?:=|\{|;)",
    re.M,
)


def check_mutable_global(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".cpp", ".hpp")):
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for m in STATIC_DATA_RE.finditer(text):
            f = Finding(
                path,
                line_of(text, m.start()),
                "mutable-global",
                "static-storage mutable data — hidden shared state is "
                "invisible to GUARDED_BY and breaks replay determinism; "
                "thread state through the owning object",
            )
            if not allowed(raw_lines, f):
                findings.append(f)


# --- guarded-member ---------------------------------------------------------

MUTEX_MEMBER_RE = re.compile(r"\bMutex\s+(?P<name>\w+)\s*;")


def check_guarded_member(findings: list[Finding]) -> None:
    for path in repo_files(("src",), (".hpp",)):
        rel = os.path.relpath(path, REPO_ROOT)
        if rel in RAW_SYNC_EXEMPT:
            continue
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments(raw)
        raw_lines = raw.splitlines()
        for m in MUTEX_MEMBER_RE.finditer(text):
            name = m.group("name")
            if re.search(
                r"\b(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
                text,
            ):
                continue
            f = Finding(
                path,
                line_of(text, m.start()),
                "guarded-member",
                f"Mutex {name} guards no member — annotate the protected "
                f"members GUARDED_BY({name}) or remove the mutex "
                "(DESIGN.md §15)",
            )
            if not allowed(raw_lines, f):
                findings.append(f)


# --- self-test --------------------------------------------------------------

# (fixture source, relative path, check, expected finding count). Each bad
# fixture also carries an allow-comment twin proving suppression works.
SELF_TEST_FIXTURES = (
    (
        "#pragma once\n#include <mutex>\nstd::mutex bad_mu;\n"
        "std::lock_guard<std::mutex> g(bad_mu);\n"
        "std::thread t;  // griphon-lint: allow(raw-sync) fixture waiver\n",
        os.path.join("src", "core", "fixture_raw_sync.hpp"),
        "raw-sync",
        3,  # mutex + mutex again inside lock_guard<> counts once per token
    ),
    (
        "#pragma once\nvoid f() { worker.detach(); }\n",
        os.path.join("src", "core", "fixture_detach.hpp"),
        "detached-thread",
        1,
    ),
    (
        "#pragma once\nstatic int counter = 0;\n"
        "inline static double scale;\n"
        "static const int kOk = 1;\n"
        "static constexpr int kAlsoOk = 2;\n"
        "class C { static int helper(); };\n",
        os.path.join("src", "core", "fixture_global.hpp"),
        "mutable-global",
        2,
    ),
    (
        "#pragma once\nclass C {\n mutable Mutex dead_mu_;\n int x_;\n};\n"
        "class D {\n mutable Mutex mu_;\n int y_ GUARDED_BY(mu_);\n};\n",
        os.path.join("src", "core", "fixture_guarded.hpp"),
        "guarded-member",
        1,
    ),
)


def self_test() -> int:
    """Negative tests: plant known-bad fixtures in a temp tree, assert each
    check fires the expected number of times and allow-comments suppress."""
    import shutil
    import tempfile

    global REPO_ROOT
    failures = 0
    saved_root = REPO_ROOT
    tmp = tempfile.mkdtemp(prefix="griphon_lint_selftest_")
    try:
        REPO_ROOT = tmp
        check_fns = {
            "raw-sync": check_raw_sync,
            "detached-thread": check_detached_thread,
            "mutable-global": check_mutable_global,
            "guarded-member": check_guarded_member,
        }
        for source, rel, check, expected in SELF_TEST_FIXTURES:
            case_dir = os.path.join(tmp, os.path.dirname(rel))
            os.makedirs(case_dir, exist_ok=True)
            fixture = os.path.join(tmp, rel)
            with open(fixture, "w", encoding="utf-8") as fh:
                fh.write(source)
            findings: list[Finding] = []
            check_fns[check](findings)
            got = sum(1 for f in findings if f.check == check)
            status = "ok" if got == expected else "FAIL"
            if got != expected:
                failures += 1
            print(f"self-test [{check}] expected {expected} got {got}: "
                  f"{status}")
            os.remove(fixture)
        # raw-sync must stay quiet on the wrapper header itself.
        exempt_dir = os.path.join(tmp, "src", "common")
        os.makedirs(exempt_dir, exist_ok=True)
        with open(os.path.join(exempt_dir, "sync.hpp"), "w",
                  encoding="utf-8") as fh:
            fh.write("#pragma once\n#include <mutex>\nstd::mutex impl_mu;\n")
        findings = []
        check_raw_sync(findings)
        status = "ok" if not findings else "FAIL"
        if findings:
            failures += 1
        print(f"self-test [raw-sync exemption] expected 0 got "
              f"{len(findings)}: {status}")
    finally:
        REPO_ROOT = saved_root
        shutil.rmtree(tmp, ignore_errors=True)
    print(f"griphon-lint self-test: "
          f"{'PASS' if failures == 0 else f'{failures} failure(s)'}")
    return 0 if failures == 0 else 1


# --- driver -----------------------------------------------------------------

CHECKS = {
    "metric-name": check_metric_names,
    "banned-call": check_banned_calls,
    "pragma-once": check_headers,
    "include-order": check_include_order,
    "nodiscard": check_nodiscard,
    "no-artifacts": check_no_artifacts,
    "raw-sync": check_raw_sync,
    "detached-thread": check_detached_thread,
    "mutable-global": check_mutable_global,
    "guarded-member": check_guarded_member,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", metavar="FILE",
                        help="also write findings to FILE")
    parser.add_argument("--checks", default=",".join(CHECKS),
                        help="comma-separated subset of checks to run")
    parser.add_argument("--self-test", action="store_true",
                        help="run fixture-based negative tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        print(f"error: unknown checks: {', '.join(unknown)}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for name in selected:
        CHECKS[name](findings)

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    lines = [str(f) for f in findings]
    summary = (
        f"griphon-lint: {len(findings)} finding(s) across "
        f"{len(selected)} checks"
        if findings
        else f"griphon-lint: clean ({len(selected)} checks)"
    )
    for line in lines:
        print(line)
    print(summary)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines + [summary]) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
