#!/usr/bin/env python3
"""Run clang-tidy over the CMake-exported compilation database.

Usage:
    tools/run_clang_tidy.py [--build-dir build] [--require] [paths...]

Reads <build-dir>/compile_commands.json, keeps translation units under the
given paths (default: src tests bench examples), and runs clang-tidy on each
in parallel with the repo's .clang-tidy config. Any diagnostic is a failure
(WarningsAsErrors is '*' in .clang-tidy).

The container used for local development may not ship clang-tidy; without
--require the script then prints a notice and exits 0 so local pre-commit
runs degrade gracefully. CI passes --require so a missing tool can never
masquerade as a clean run.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ("src", "tests", "bench", "examples")
CANDIDATE_BINARIES = (
    "clang-tidy",
    "clang-tidy-19",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
    "clang-tidy-15",
    "clang-tidy-14",
)


def find_clang_tidy() -> str | None:
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def load_database(build_dir: str) -> list[dict]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"error: {db_path} not found — configure first:\n"
            "  cmake -B build -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is ON "
            "by default)"
        )
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def select_files(database: list[dict], paths: tuple[str, ...]) -> list[str]:
    prefixes = tuple(os.path.join(REPO_ROOT, p) + os.sep for p in paths)
    files = sorted(
        {
            entry["file"]
            for entry in database
            if os.path.abspath(entry["file"]).startswith(prefixes)
        }
    )
    return files


def run_one(binary: str, build_dir: str, source: str) -> tuple[str, int, str]:
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", source],
        capture_output=True,
        text=True,
        check=False,
        cwd=REPO_ROOT,
    )
    # clang-tidy prints diagnostics on stdout; suppress the noise-only
    # "N warnings generated" stderr chatter from clean runs.
    return source, proc.returncode, proc.stdout.strip()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) if clang-tidy is not installed",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=multiprocessing.cpu_count(),
    )
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS))
    args = parser.parse_args()

    binary = find_clang_tidy()
    if binary is None:
        if args.require:
            print("error: clang-tidy not found (set CLANG_TIDY or install it)")
            return 2
        print("notice: clang-tidy not installed — skipping (use --require "
              "to make this an error)")
        return 0

    build_dir = os.path.join(REPO_ROOT, args.build_dir)
    database = load_database(build_dir)
    files = select_files(database, tuple(args.paths))
    if not files:
        print("error: no translation units matched", args.paths)
        return 2

    print(f"{binary}: checking {len(files)} translation units "
          f"with {args.jobs} jobs")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, code, output in pool.map(
            lambda f: run_one(binary, build_dir, f), files
        ):
            rel = os.path.relpath(source, REPO_ROOT)
            if code != 0 or output:
                failures += 1
                print(f"== {rel}")
                if output:
                    print(output)
    if failures:
        print(f"clang-tidy: {failures}/{len(files)} files with diagnostics")
        return 1
    print(f"clang-tidy: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
