#!/usr/bin/env python3
"""Run the Clang Static Analyzer over the CMake-exported compilation database.

Usage:
    tools/run_csa.py [--build-dir build] [--require] [--report-dir DIR]
                     [paths...]

Reads <build-dir>/compile_commands.json, keeps translation units under the
given paths (default: src), and analyzes each in parallel with
`clang --analyze`. The analyzer's path-sensitive checks (core.*, deadcode,
cplusplus.*, unix.Malloc, security checks) catch whole-path bugs the
compiler's flow-insensitive warnings cannot: null derefs behind branches,
use-after-move chains, leaked resources on error paths.

Any analyzer diagnostic fails the run (exit 1) — the suppression policy is
the same as the rest of the static-analysis stack (DESIGN.md §15): fix the
bug or annotate the false positive at the source with a justification; no
global suppression lists.

With --report-dir, per-file HTML reports are emitted for every diagnostic
(CI uploads the directory as an artifact so a red lane is debuggable from
the browser).

The container used for local development may not ship clang; without
--require the script prints a notice and exits 0 so local pre-commit runs
degrade gracefully. CI passes --require so a missing tool can never
masquerade as a clean run.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import multiprocessing
import os
import shlex
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Library code only by default: tests/benches trade analyzer cleanliness for
# brevity (intentional leaks of process-lifetime fixtures etc.).
DEFAULT_PATHS = ("src",)
CANDIDATE_BINARIES = (
    "clang++",
    "clang++-19",
    "clang++-18",
    "clang++-17",
    "clang++-16",
    "clang++-15",
    "clang++-14",
)

# Checker set: the default core/cplusplus/deadcode/unix packages plus the
# optional checkers that have proven signal on value-semantic C++ like this
# codebase. Experimental alpha.* checkers stay off — their false-positive
# rate would force suppressions, and the policy is zero suppressions.
ENABLED_CHECKERS = (
    "optin.cplusplus.UninitializedObject",
    "optin.cplusplus.VirtualCall",
)

# Flags clang does not understand or that fight the analyzer; everything
# else (-std, -I, -D) is reused from the GCC command line so the analyzer
# sees exactly what the compiler sees.
DROP_FLAGS = {"-c", "-o", "-fno-fat-lto-objects"}
DROP_PREFIXES = ("-fdebug-prefix-map",)


def find_clang() -> str | None:
    override = os.environ.get("CSA_CLANG")
    if override:
        return override if shutil.which(override) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def load_database(build_dir: str) -> list[dict]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"error: {db_path} not found — configure first:\n"
            "  cmake -B build -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is ON "
            "by default)"
        )
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def select_entries(database: list[dict],
                   paths: tuple[str, ...]) -> list[dict]:
    prefixes = tuple(os.path.join(REPO_ROOT, p) + os.sep for p in paths)
    by_file: dict[str, dict] = {}
    for entry in database:
        path = os.path.abspath(entry["file"])
        if path.startswith(prefixes):
            by_file.setdefault(path, entry)
    return [by_file[f] for f in sorted(by_file)]


def analyzer_args(entry: dict) -> list[str]:
    """Reuse the compile command's include paths/defines/standard, dropping
    codegen-only flags plus the input/output operands."""
    argv = entry.get("arguments") or shlex.split(entry["command"])
    out: list[str] = []
    skip_next = False
    for arg in argv[1:]:  # argv[0] is the real compiler
        if skip_next:
            skip_next = False
            continue
        if arg in DROP_FLAGS:
            skip_next = arg == "-o"
            continue
        if arg.startswith(DROP_PREFIXES):
            continue
        if os.path.abspath(arg) == os.path.abspath(entry["file"]):
            continue
        out.append(arg)
    return out


def run_one(binary: str, entry: dict,
            report_dir: str | None) -> tuple[str, int, str]:
    source = entry["file"]
    cmd = [binary, "--analyze"]
    for checker in ENABLED_CHECKERS:
        cmd += ["-Xclang", "-analyzer-checker=" + checker]
    if report_dir:
        rel = os.path.relpath(os.path.abspath(source), REPO_ROOT)
        out_dir = os.path.join(report_dir, rel.replace(os.sep, "__"))
        cmd += ["-Xclang", "-analyzer-output=html", "-o", out_dir]
    else:
        # Text diagnostics go to stderr; no .plist droppings in the tree.
        cmd += ["-Xclang", "-analyzer-output=text"]
    cmd += analyzer_args(entry)
    cmd.append(source)
    proc = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        check=False,
        cwd=entry.get("directory", REPO_ROOT),
    )
    return source, proc.returncode, (proc.stderr or "").strip()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) if clang is not installed",
    )
    parser.add_argument(
        "--report-dir",
        metavar="DIR",
        help="emit per-file HTML reports for diagnostics into DIR",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=multiprocessing.cpu_count(),
    )
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS))
    args = parser.parse_args()

    binary = find_clang()
    if binary is None:
        if args.require:
            print("error: clang not found (set CSA_CLANG or install it)")
            return 2
        print("notice: clang not installed — skipping the static analyzer "
              "(use --require to make this an error)")
        return 0

    build_dir = os.path.join(REPO_ROOT, args.build_dir)
    entries = select_entries(load_database(build_dir), tuple(args.paths))
    if not entries:
        print("error: no translation units matched", args.paths)
        return 2
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)

    print(f"{binary} --analyze: {len(entries)} translation units "
          f"with {args.jobs} jobs")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, code, output in pool.map(
            lambda e: run_one(binary, e, args.report_dir), entries
        ):
            rel = os.path.relpath(source, REPO_ROOT)
            # A diagnostic shows up as "warning:" lines from the analyzer;
            # a non-zero exit means the TU did not even parse.
            noisy = [
                line
                for line in output.splitlines()
                if "warning:" in line or "error:" in line
            ]
            if code != 0 or noisy:
                failures += 1
                print(f"== {rel}")
                print(output or f"(exit {code}, no output)")
    if failures:
        print(f"csa: {failures}/{len(entries)} files with diagnostics")
        if args.report_dir:
            print(f"csa: HTML reports under {args.report_dir}")
        return 1
    print(f"csa: clean ({len(entries)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
