#!/usr/bin/env python3
"""validate_trace.py: structural checks for exported Chrome traces.

The telemetry::TraceExporter (DESIGN.md §14) serializes span trees, DAG
executor steps and chaos fault events to Chrome Trace Event JSON. Perfetto
and chrome://tracing are forgiving loaders — they silently drop or
misrender malformed events — so CI validates the structure strictly before
uploading trace artifacts:

  * top level is {"traceEvents": [...]} (displayTimeUnit optional);
  * every event carries the required fields for its phase: name/ph/pid/tid
    always, ts for B/E/i (metadata events are ts-free);
  * phases are limited to what the exporter emits: B, E, i, M;
  * B/E events pair up stack-wise per (pid, tid) with matching names —
    an E without an open B, a leftover B, or a name mismatch on pop is
    fatal (the exporter closes open-at-export spans explicitly, flagging
    them with args.incomplete instead of leaving the pair broken);
  * ts is integer microseconds, monotonically non-decreasing per
    (pid, tid) lane in file order (Chrome's JSON loader sorts stably, so
    in-order files render identically everywhere);
  * instant events use process scope (s: "p");
  * M events are process_name / thread_name with an args.name string.

Usage:
    tools/validate_trace.py trace1.json [trace2.json ...]

Exit status: 0 all valid, 1 any violation or unreadable file, 2 usage.
"""

from __future__ import annotations

import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "M"}
ALLOWED_METADATA = {"process_name", "thread_name"}


def fail(path: str, index: int, message: str, errors: list[str]) -> None:
    errors.append(f"{path}: event[{index}]: {message}")


def validate_file(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: top level must be an object with 'traceEvents'"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be an array"]
    if not events:
        errors.append(f"{path}: empty trace (no events)")

    # Per-(pid, tid) open-B stack and last-seen ts.
    stacks: dict[tuple, list[tuple[int, str]]] = {}
    last_ts: dict[tuple, int] = {}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, i, "event is not an object", errors)
            continue
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(path, i, f"phase {ph!r} not in {sorted(ALLOWED_PHASES)}",
                 errors)
            continue
        for field in ("name", "pid", "tid"):
            if field not in ev:
                fail(path, i, f"{ph} event missing required field "
                     f"{field!r}", errors)
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            fail(path, i, "name must be a non-empty string", errors)
        lane = (ev.get("pid"), ev.get("tid"))

        if ph == "M":
            if ev.get("name") not in ALLOWED_METADATA:
                fail(path, i, f"metadata name {ev.get('name')!r} not in "
                     f"{sorted(ALLOWED_METADATA)}", errors)
            args = ev.get("args")
            if not isinstance(args, dict) or \
                    not isinstance(args.get("name"), str):
                fail(path, i, "metadata event needs args.name (string)",
                     errors)
            continue

        ts = ev.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool):
            fail(path, i, f"ts must be integer microseconds, got {ts!r}",
                 errors)
            continue
        if lane in last_ts and ts < last_ts[lane]:
            fail(path, i, f"ts {ts} goes backwards on lane pid={lane[0]} "
                 f"tid={lane[1]} (prev {last_ts[lane]})", errors)
        last_ts[lane] = ts

        if ph == "B":
            stacks.setdefault(lane, []).append((i, ev["name"]))
        elif ph == "E":
            stack = stacks.get(lane) or []
            if not stack:
                fail(path, i, f"E {ev['name']!r} with no open B on lane "
                     f"pid={lane[0]} tid={lane[1]}", errors)
            else:
                opened_at, open_name = stack.pop()
                # The exporter emits E with the span name repeated; Chrome
                # tolerates nameless E but a mismatch means crossed pairs.
                if ev["name"] != open_name:
                    fail(path, i, f"E {ev['name']!r} closes B {open_name!r} "
                         f"(opened at event[{opened_at}]) — crossed pair",
                         errors)
        elif ph == "i":
            if ev.get("s") != "p":
                fail(path, i, f"instant event scope {ev.get('s')!r} — "
                     "exporter uses process scope (s: 'p')", errors)

    for lane, stack in stacks.items():
        for opened_at, name in stack:
            errors.append(
                f"{path}: event[{opened_at}]: B {name!r} on lane "
                f"pid={lane[0]} tid={lane[1]} never closed")
    return errors


def main() -> int:
    paths = sys.argv[1:]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    total_errors = 0
    for path in paths:
        errors = validate_file(path)
        for e in errors:
            print(e)
        total_errors += len(errors)
        if not errors:
            with open(path, encoding="utf-8") as fh:
                n = len(json.load(fh)["traceEvents"])
            print(f"{path}: OK ({n} events)")
    if total_errors:
        print(f"validate_trace: {total_errors} violation(s)")
        return 1
    print(f"validate_trace: {len(paths)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
